// Closed byte intervals [first, last], the paper's native vocabulary.
//
// The paper states every condition in terms of closed intervals
// ([f, f+l-1], [t, t+l-1]); we keep that convention so the code reads
// against the paper, and provide the empty-interval edge cases the paper
// elides (zero-length commands never occur in valid scripts, but the
// type must still behave).
#pragma once

#include <algorithm>
#include <ostream>

#include "core/types.hpp"

namespace ipd {

/// Closed interval of byte offsets. Invariant: first <= last.
struct Interval {
  offset_t first = 0;
  offset_t last = 0;

  /// Interval covering `length` bytes starting at `start`.
  /// Precondition: length >= 1.
  static constexpr Interval of(offset_t start, length_t length) noexcept {
    return Interval{start, start + length - 1};
  }

  constexpr length_t length() const noexcept { return last - first + 1; }

  constexpr bool contains(offset_t x) const noexcept {
    return first <= x && x <= last;
  }

  /// The paper's conflict test: [a] ∩ [b] ≠ ∅  (Equation 1 / 3).
  constexpr bool intersects(const Interval& o) const noexcept {
    return first <= o.last && o.first <= last;
  }

  constexpr bool operator==(const Interval&) const noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.first << ", " << iv.last << ']';
}

}  // namespace ipd
