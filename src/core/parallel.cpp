#include "core/parallel.hpp"

#include <atomic>
#include <memory>
#include <thread>

#include "core/sync.hpp"

namespace ipd {

std::size_t effective_parallelism(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// Shared by the caller and every helper; owned via shared_ptr because
/// a helper that loses every claim race may still touch it after the
/// caller has already returned.
struct ForState {
  std::function<void(std::size_t)> body;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex mutex{"parallel_for"};
  ConditionVariable cv;
  std::exception_ptr error GUARDED_BY(mutex);
};

void drain(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const std::size_t i =
        state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->chunks) return;
    try {
      state->body(i);
    } catch (...) {
      MutexLock lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
    }
    // acq_rel: publishes this chunk's writes to whoever observes the
    // final count (the caller reads `done` with acquire below).
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->chunks) {
      MutexLock lock(state->mutex);
      state->cv.notify_all();
    }
  }
}

}  // namespace

void parallel_for(const ParallelContext& ctx, std::size_t chunks,
                  const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  if (!ctx.enabled() || chunks == 1) {
    for (std::size_t i = 0; i < chunks; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->body = body;
  state->chunks = chunks;

  const std::size_t helpers = std::min(ctx.parallelism - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    try {
      ctx.pool->post([state] { drain(state); });
    } catch (const Error&) {
      break;  // pool shutting down: the caller runs what is left
    }
  }

  drain(state);  // caller participation — guarantees progress

  std::exception_ptr error;
  {
    UniqueLock lock(state->mutex);
    while (state->done.load(std::memory_order_acquire) != chunks) {
      state->cv.wait(lock);
    }
    // Move, not copy, under the lock that guards it: a helper that lost
    // every claim race may hold the last ForState reference and destroy
    // it after we return — moving leaves it a null exception_ptr so the
    // exception object's lifetime belongs to this thread alone. (No
    // writer can race the move: done == chunks means every body call,
    // and therefore every catch, has completed.)
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ipd
