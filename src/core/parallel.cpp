#include "core/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace ipd {

std::size_t effective_parallelism(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// Shared by the caller and every helper; owned via shared_ptr because
/// a helper that loses every claim race may still touch it after the
/// caller has already returned.
struct ForState {
  std::function<void(std::size_t)> body;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;
};

void drain(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const std::size_t i =
        state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->chunks) return;
    try {
      state->body(i);
    } catch (...) {
      std::lock_guard lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
    }
    // acq_rel: publishes this chunk's writes to whoever observes the
    // final count (the caller reads `done` with acquire below).
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->chunks) {
      std::lock_guard lock(state->mutex);
      state->cv.notify_all();
    }
  }
}

}  // namespace

void parallel_for(const ParallelContext& ctx, std::size_t chunks,
                  const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  if (!ctx.enabled() || chunks == 1) {
    for (std::size_t i = 0; i < chunks; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->body = body;
  state->chunks = chunks;

  const std::size_t helpers = std::min(ctx.parallelism - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    try {
      ctx.pool->post([state] { drain(state); });
    } catch (const Error&) {
      break;  // pool shutting down: the caller runs what is left
    }
  }

  drain(state);  // caller participation — guarantees progress

  {
    std::unique_lock lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ipd
