#include "core/rng.hpp"

namespace ipd {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  return mix64(state += 0x9E3779B97F4A7C15ull);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Debiased via rejection from the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

length_t Rng::power_law_length(length_t cap) noexcept {
  length_t len = 1;
  while (len < cap && chance(0.5)) {
    len *= 2;
  }
  if (len > cap) len = cap;
  // Jitter within the final octave so lengths are not all powers of two.
  return len == 1 ? 1 : len / 2 + below(len / 2) + 1;
}

void Rng::fill(MutByteView out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = next();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  if (i < out.size()) {
    std::uint64_t word = next();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
}

}  // namespace ipd
