#include "core/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>

namespace ipd {

namespace {

/// "permission denied" etc. when the C library recorded a cause; stream
/// operations do not always set errno, so absence is not an error.
std::string errno_suffix() {
  return errno != 0 ? std::string(" (") + errno_message(errno) + ")"
                    : std::string();
}

}  // namespace

std::string errno_message(int err) {
  char buf[256] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r may return a static immutable string instead of buf.
  return std::string(strerror_r(err, buf, sizeof buf));
#else
  if (strerror_r(err, buf, sizeof buf) != 0) {
    return "errno " + std::to_string(err);
  }
  return std::string(buf);
#endif
}

Bytes read_file(const std::filesystem::path& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open for reading: " + path.string() +
                  errno_suffix());
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw IoError("cannot determine size of: " + path.string() +
                  errno_suffix());
  }
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size)) {
    throw IoError("short read from " + path.string() + ": got " +
                  std::to_string(in.gcount()) + " of " +
                  std::to_string(size) + " bytes" + errno_suffix());
  }
  return data;
}

void write_file(const std::filesystem::path& path, ByteView data) {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("cannot open for writing: " + path.string() +
                  errno_suffix());
  }
  if (!data.empty() &&
      !out.write(reinterpret_cast<const char*>(data.data()),
                 static_cast<std::streamsize>(data.size()))) {
    // tellp() reports how far the stream got before failing (e.g. disk
    // full), which is what the operator needs to size the problem.
    const std::streamoff written = out.tellp();
    throw IoError("short write to " + path.string() + ": wrote " +
                  std::to_string(written < 0 ? 0 : written) + " of " +
                  std::to_string(data.size()) + " bytes" + errno_suffix());
  }
  out.flush();
  if (!out) {
    throw IoError("cannot flush " + std::to_string(data.size()) +
                  " bytes to " + path.string() + errno_suffix());
  }
}

}  // namespace ipd
