#include "core/io.hpp"

#include <fstream>

namespace ipd {

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open for reading: " + path.string());
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw IoError("cannot determine size of: " + path.string());
  }
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size)) {
    throw IoError("short read from: " + path.string());
  }
  return data;
}

void write_file(const std::filesystem::path& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("cannot open for writing: " + path.string());
  }
  if (!data.empty() &&
      !out.write(reinterpret_cast<const char*>(data.data()),
                 static_cast<std::streamsize>(data.size()))) {
    throw IoError("short write to: " + path.string());
  }
}

}  // namespace ipd
