// Checksums used by the delta file format.
//
// Delta files carry an Adler-32 of the payload so a device can reject a
// delta corrupted in transit *before* it starts destroying its only copy
// of the reference file, and a CRC-32C of the expected version output so
// the updater can verify the reconstruction afterwards.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace ipd {

/// Adler-32 (RFC 1950). Fast, order-sensitive, fine for transport checks.
std::uint32_t adler32(ByteView data, std::uint32_t seed = 1) noexcept;

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41), table-driven software
/// implementation. `seed` is the running CRC from a previous call
/// (0 to start a fresh computation).
std::uint32_t crc32c(ByteView data, std::uint32_t seed = 0) noexcept;

/// Incremental CRC-32C helper for streamed reconstruction.
class Crc32c {
 public:
  void update(ByteView data) noexcept { crc_ = crc32c(data, crc_); }
  std::uint32_t value() const noexcept { return crc_; }
  void reset() noexcept { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

}  // namespace ipd
