#include "core/varint.hpp"

namespace ipd {

std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::size_t encode_varint(std::uint8_t* out, std::uint64_t value) noexcept {
  std::size_t n = 0;
  while (value >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(value | 0x80);
    value >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(value);
  return n;
}

void append_varint(Bytes& out, std::uint64_t value) {
  std::uint8_t buf[kMaxVarintBytes];
  const std::size_t n = encode_varint(buf, value);
  out.insert(out.end(), buf, buf + n);
}

std::optional<VarintResult> try_decode_varint(ByteView in) noexcept {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (std::size_t i = 0; i < in.size() && i < kMaxVarintBytes; ++i) {
    const std::uint8_t b = in[i];
    // The 10th byte may contribute only the final bit of a 64-bit value.
    if (i == kMaxVarintBytes - 1 && b > 1) {
      return std::nullopt;
    }
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      return VarintResult{value, i + 1};
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or overlong
}

VarintResult decode_varint(ByteView in) {
  if (auto r = try_decode_varint(in)) {
    return *r;
  }
  throw FormatError("varint: truncated or overlong encoding");
}

}  // namespace ipd
