// Deterministic fork/join helper over a shared ThreadPool.
//
// Everything parallel in this library runs through parallel_for, and it
// obeys two rules that the rest of the system leans on:
//
//  1. WHAT runs never depends on the parallelism — callers decide the
//     chunking from input content and options alone, so the same input
//     yields byte-identical output at any thread count (the determinism
//     contract the pipeline tests enforce).
//
//  2. The CALLER PARTICIPATES. Helpers are posted to the pool, but the
//     calling thread claims chunks too and is always sufficient on its
//     own. That makes the scheme deadlock-free even when the caller IS
//     a pool worker (a DeltaService build fanning sub-work into the
//     pool it runs on): a saturated or shut-down pool degrades to a
//     serial loop on the caller, never to a wait on threads that cannot
//     make progress.
#pragma once

#include <cstddef>
#include <functional>

#include "core/thread_pool.hpp"

namespace ipd {

/// Resolve a user-facing parallelism knob: 0 means "hardware
/// concurrency" (at least 1), anything else passes through.
std::size_t effective_parallelism(std::size_t requested) noexcept;

/// Where parallel work may run. A default-constructed context (or
/// parallelism <= 1, or no pool) means "inline on the caller" — the
/// zero-thread path every algorithm must also be correct on.
struct ParallelContext {
  ThreadPool* pool = nullptr;
  std::size_t parallelism = 1;

  bool enabled() const noexcept { return pool != nullptr && parallelism > 1; }
};

/// Run body(0) .. body(chunks-1), each exactly once, using up to
/// parallelism-1 pool helpers plus the calling thread. Returns after
/// every chunk finished; all body side effects happen-before the
/// return. The first exception thrown by any chunk is rethrown on the
/// caller (remaining chunks still run — chunk work must be exception-
/// safe but need not be cancellable).
void parallel_for(const ParallelContext& ctx, std::size_t chunks,
                  const std::function<void(std::size_t)>& body);

}  // namespace ipd
