// Runtime lock-order validator (IPDELTA_SANITIZE=lockorder).
//
// Model: lockdep-lite over mutex *instances*. Each thread keeps a stack
// of the locks it holds. Acquiring B while holding A (A = current top
// of stack) records the directed edge A -> B in a global graph together
// with the acquisition backtrace that created it. Before the edge is
// added, a DFS asks whether B already reaches A — if so, some thread
// has taken these locks in the opposite order and the program has a
// latent deadlock, even if no two threads ever actually collided. We
// abort right there, printing the current acquisition stack and the
// recorded stack of every edge on the inverse path.
//
// Top-of-stack edges are sufficient: holding A,B and then taking C
// records B->C, and A->C follows transitively through A->B in the DFS.
//
// Everything here is off unless IPDELTA_LOCK_ORDER is defined (the
// CMake IPDELTA_SANITIZE=lockorder branch); sync.hpp's hooks compile to
// (void)0 otherwise and this translation unit is empty.

#include "core/sync.hpp"

#if defined(IPDELTA_LOCK_ORDER)

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ipd::lockorder {
namespace {

constexpr int kMaxFrames = 32;

struct Held {
  const void* mutex;
  const char* name;
};

// The validator's own bookkeeping lock is a plain std::mutex: it must
// not feed back into the graph it maintains.
struct Edge {
  std::string from_name;
  std::string to_name;
  std::string stack;  // backtrace of the acquisition that created it
};

struct Graph {
  std::mutex mu;
  // adj[a][b] = the edge a -> b ("b was acquired while a was held").
  std::unordered_map<const void*,
                     std::unordered_map<const void*, Edge>>
      adj;
};

Graph& graph() {
  // Heap-allocated and never destroyed: worker threads may still be
  // releasing locks while static destructors run.
  static Graph* g = new Graph;
  return *g;
}

thread_local std::vector<Held> t_held;

std::string capture_stack() {
  void* frames[kMaxFrames];
  int n = backtrace(frames, kMaxFrames);
  char** symbols = backtrace_symbols(frames, n);
  std::string out;
  // Skip the validator's own frames (capture_stack, pre_acquire/acquired,
  // Mutex::lock) — callers start around frame 3.
  for (int i = 3; i < n; ++i) {
    out += "    ";
    out += symbols != nullptr ? symbols[i] : "<unresolved>";
    out += "\n";
  }
  std::free(symbols);
  return out;
}

std::string render_held() {
  std::string out;
  for (const Held& h : t_held) {
    out += out.empty() ? "" : " -> ";
    out += h.name;
  }
  return out.empty() ? "(none)" : out;
}

// Is `to` reachable from `from` in the edge graph? Caller holds graph().mu.
// On success fills `path` with the edges of one from ->* to walk.
bool find_path(const Graph& g, const void* from, const void* to,
               std::unordered_set<const void*>& seen,
               std::vector<const Edge*>& path) {
  if (from == to) return true;
  if (!seen.insert(from).second) return false;
  auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (const auto& [next, edge] : it->second) {
    path.push_back(&edge);
    if (find_path(g, next, to, seen, path)) return true;
    path.pop_back();
  }
  return false;
}

[[noreturn]] void die(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void pre_acquire(const void* mutex, const char* name) {
  for (const Held& h : t_held) {
    if (h.mutex == mutex) {
      die("ipdelta lockorder: recursive acquisition of '" +
          std::string(name) + "' (non-recursive mutex relocked by its "
          "own thread)\n  held: " + render_held() +
          "\n  second acquisition at:\n" + capture_stack());
    }
  }
  if (t_held.empty()) return;
  const Held& top = t_held.back();
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  auto& edges = g.adj[top.mutex];
  if (edges.find(mutex) != edges.end()) return;  // known-good order
  std::unordered_set<const void*> seen;
  std::vector<const Edge*> path;
  if (find_path(g, mutex, top.mutex, seen, path)) {
    std::string report =
        "ipdelta lockorder: lock-order inversion (potential deadlock)\n"
        "  this thread holds " + render_held() + " and is acquiring '" +
        name + "'\n  but '" + name + "' was previously ordered before '" +
        top.name + "':\n";
    for (const Edge* e : path) {
      report += "  edge '" + e->from_name + "' -> '" + e->to_name +
                "' acquired at:\n" + e->stack;
    }
    report += "  current acquisition of '" + std::string(name) +
              "' at:\n" + capture_stack();
    die(report);
  }
  edges.emplace(mutex, Edge{top.name, name, capture_stack()});
}

void acquired(const void* mutex, const char* name) {
  t_held.push_back(Held{mutex, name});
}

void released(const void* mutex) {
  // Unlock order need not mirror lock order; erase the newest match.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void destroyed(const void* mutex) {
  // Forget a destroyed mutex entirely: its address may be reused by an
  // unrelated lock, and stale edges would report phantom inversions.
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.adj.erase(mutex);
  for (auto& [from, edges] : g.adj) {
    (void)from;
    edges.erase(mutex);
  }
}

}  // namespace ipd::lockorder

#endif  // IPDELTA_LOCK_ORDER
