// Bounds-checked sequential reader/writer over byte buffers.
//
// The delta codecs are pure functions over in-memory byte sequences; these
// two cursors keep every access bounds-checked so a hostile delta file can
// never read or write outside its buffers.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/types.hpp"
#include "core/varint.hpp"

namespace ipd {

/// Sequential bounds-checked reader over a ByteView.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) noexcept : data_(data) {}

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == data_.size(); }

  /// Read a single byte. Throws FormatError at end of input.
  std::uint8_t read_u8();

  /// Read a little-endian fixed-width integer.
  std::uint16_t read_u16le();
  std::uint32_t read_u32le();
  std::uint64_t read_u64le();

  /// Read a varint (see core/varint.hpp).
  std::uint64_t read_varint();

  /// Read exactly `n` bytes; the returned view aliases the input buffer.
  ByteView read_bytes(std::size_t n);

  /// Skip `n` bytes forward. Throws FormatError if fewer remain.
  void skip(std::size_t n);

 private:
  void require(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

/// Appending writer over an owning Bytes buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  std::size_t size() const noexcept { return out_.size(); }

  void write_u8(std::uint8_t v);
  void write_u16le(std::uint16_t v);
  void write_u32le(std::uint32_t v);
  void write_u64le(std::uint64_t v);
  void write_varint(std::uint64_t v);
  void write_bytes(ByteView data);
  void write_string(std::string_view s);

  const Bytes& bytes() const noexcept { return out_; }
  /// Move the accumulated buffer out; the writer is empty afterwards.
  Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

}  // namespace ipd
