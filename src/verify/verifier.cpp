#include "verify/verifier.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "core/checksum.hpp"
#include "obs/trace.hpp"
#include "core/lzss.hpp"
#include "inplace/interval_index.hpp"

namespace ipd {
namespace {

std::string interval_text(const Interval& iv) {
  return "[" + std::to_string(iv.first) + ", " + std::to_string(iv.last) + "]";
}

std::string cmd_text(std::size_t index) {
  return "cmd#" + std::to_string(index);
}

/// Capped sink for findings. The boolean verdicts must stay exact even
/// when an adversarial delta produces more violations than we are willing
/// to materialize, so the structural flags live here, not in the vector.
class Sink {
 public:
  Sink(Report& report, const VerifyOptions& options)
      : report_(report), cap_(options.max_findings) {}

  void add(Severity severity, Check check, std::string message,
           std::optional<std::size_t> command = std::nullopt,
           std::optional<std::size_t> other = std::nullopt,
           std::optional<Interval> bytes = std::nullopt) {
    if (severity == Severity::kError) {
      switch (check) {
        case Check::kCodeword:
        case Check::kOffsetOverflow:
        case Check::kReadBounds:
        case Check::kWriteBounds:
        case Check::kWriteOverlap:
        case Check::kCoverage:
          structural_error_ = true;
          break;
        default:
          break;
      }
      ++errors_;
    }
    if (report_.findings.size() >= cap_) {
      report_.findings_truncated = true;
      return;
    }
    report_.findings.push_back(Finding{severity, check, std::move(message),
                                       command, other, bytes});
  }

  bool structural_error() const noexcept { return structural_error_; }
  std::size_t errors() const noexcept { return errors_; }

 private:
  Report& report_;
  std::size_t cap_;
  bool structural_error_ = false;
  std::size_t errors_ = 0;
};

/// Script-level analysis shared by the serialized and in-memory entry
/// points: bounds, overflow, coverage, and — when the write intervals
/// turn out disjoint — Equation 2 via the §4.3 interval index.
void analyze_script(const std::vector<Command>& commands, length_t ref_len,
                    length_t ver_len, bool in_place_claimed,
                    const VerifyOptions& opts, Report& report) {
  Sink sink(report, opts);
  constexpr offset_t kMaxOffset = std::numeric_limits<offset_t>::max();
  const bool in_place_wanted = in_place_claimed || opts.require_in_place;

  // Pass 1: per-command checks. `usable[i]` marks commands whose write
  // interval is representable (nonzero length, no u64 wraparound) and
  // may therefore participate in the coverage and conflict passes.
  std::vector<char> usable(commands.size(), 0);
  std::vector<char> read_usable(commands.size(), 0);
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const Command& cmd = commands[i];
    const length_t len = command_length(cmd);
    const offset_t to = command_to(cmd);
    if (len == 0) {
      sink.add(Severity::kError, Check::kCodeword,
               cmd_text(i) + ": command with zero length", i);
      continue;
    }
    if (to > kMaxOffset - (len - 1)) {
      sink.add(Severity::kError, Check::kOffsetOverflow,
               cmd_text(i) + ": write offset " + std::to_string(to) +
                   " + length " + std::to_string(len) + " overflows u64",
               i);
      continue;
    }
    usable[i] = 1;
    const Interval w = Interval::of(to, len);
    if (ver_len == 0 || w.last >= ver_len) {
      sink.add(Severity::kError, Check::kWriteBounds,
               cmd_text(i) + ": writes " + interval_text(w) +
                   " outside the version file of " + std::to_string(ver_len) +
                   " bytes",
               i, std::nullopt, w);
    }
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (copy->from > kMaxOffset - (len - 1)) {
        sink.add(Severity::kError, Check::kOffsetOverflow,
                 cmd_text(i) + ": read offset " + std::to_string(copy->from) +
                     " + length " + std::to_string(len) + " overflows u64",
                 i);
        continue;
      }
      read_usable[i] = 1;
      const Interval r = Interval::of(copy->from, len);
      if (ref_len == 0 || r.last >= ref_len) {
        sink.add(Severity::kError, Check::kReadBounds,
                 cmd_text(i) + ": copy reads " + interval_text(r) +
                     " outside the reference file of " +
                     std::to_string(ref_len) + " bytes",
                 i, std::nullopt, r);
      }
    }
  }

  // Pass 2: coverage — write intervals sorted by offset must be pairwise
  // disjoint and tile [0, V) exactly. Unlike Script::validate, which
  // throws citing only the first offender, enumerate every gap and
  // overlap pair (up to the cap) so the report is a complete diagnosis.
  struct Slot {
    Interval write;
    std::uint32_t serial;
  };
  std::vector<Slot> slots;
  slots.reserve(commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (usable[i]) {
      slots.push_back(Slot{command_write_interval(commands[i]),
                           static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    return a.write.first != b.write.first ? a.write.first < b.write.first
                                          : a.write.last < b.write.last;
  });
  bool disjoint = true;
  offset_t next = 0;           // first version byte not yet written
  bool next_saturated = false;  // a write reached offset u64-max
  std::size_t prev_slot = 0;    // slot index with the furthest write end
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const Interval& w = slots[s].write;
    if (s > 0 && !next_saturated && w.first < next) {
      disjoint = false;
      const Interval& pw = slots[prev_slot].write;
      const Interval overlap{w.first, std::min(w.last, pw.last)};
      sink.add(Severity::kError, Check::kWriteOverlap,
               cmd_text(slots[s].serial) + " and " +
                   cmd_text(slots[prev_slot].serial) +
                   " both write bytes " + interval_text(overlap),
               slots[s].serial, slots[prev_slot].serial, overlap);
    } else if (!next_saturated && w.first > next && next < ver_len) {
      const Interval gap{next, std::min<offset_t>(w.first - 1, ver_len - 1)};
      sink.add(Severity::kError, Check::kCoverage,
               "coverage gap: bytes " + interval_text(gap) +
                   " are never written",
               std::nullopt, std::nullopt, gap);
    }
    if (s == 0 || w.last > slots[prev_slot].write.last) prev_slot = s;
    if (w.last == kMaxOffset) {
      next_saturated = true;
    } else if (!next_saturated) {
      next = std::max(next, w.last + 1);
    }
  }
  if (!next_saturated && next < ver_len) {
    const Interval gap{next, ver_len - 1};
    sink.add(Severity::kError, Check::kCoverage,
             "coverage gap: bytes " + interval_text(gap) +
                 " are never written",
             std::nullopt, std::nullopt, gap);
  }

  // Pass 3: Equation 2. Needs pairwise-disjoint writes (the interval
  // index's precondition); every command — add or copy — is a writer,
  // every copy a reader. A copy overlapping its OWN write interval is
  // legal (§4.1); only a strictly earlier writer conflicts.
  std::size_t conflict_count = 0;
  if (disjoint && slots.size() == commands.size()) {
    std::vector<CopyCommand> writers;
    writers.reserve(slots.size());
    for (const Slot& slot : slots) {
      writers.push_back(
          CopyCommand{0, slot.write.first, slot.write.length()});
    }
    const IntervalIndex index(writers);
    for (std::size_t ri = 0; ri < commands.size(); ++ri) {
      const auto* copy = std::get_if<CopyCommand>(&commands[ri]);
      if (copy == nullptr || !read_usable[ri]) continue;
      const Interval read = copy->read_interval();
      index.for_each_overlapping(read, [&](std::uint32_t slot_idx) {
        const std::size_t wi = slots[slot_idx].serial;
        if (wi >= ri) return;  // later or self: no conflict
        ++conflict_count;
        if (in_place_wanted) {
          const Interval& w = slots[slot_idx].write;
          const Interval overlap{std::max(read.first, w.first),
                                 std::min(read.last, w.last)};
          sink.add(Severity::kError, Check::kWriteBeforeRead,
                   "conflict: " + cmd_text(ri) + " reads " +
                       interval_text(overlap) + " after " + cmd_text(wi) +
                       " wrote it",
                   ri, wi, overlap);
        }
      });
    }
    if (in_place_claimed && conflict_count > 0) {
      sink.add(Severity::kError, Check::kInPlaceFlag,
               "header claims in-place applicability but the script has " +
                   std::to_string(conflict_count) +
                   " write-before-read conflict(s)");
    }
  }

  // Style warnings, calibrated so pipeline output is silent: the paper
  // schedules adds after all copies in an in-place script (§4.2), and a
  // sequential (non-in-place) delta is expected to write contiguously.
  if (in_place_wanted && !sink.structural_error()) {
    std::size_t last_copy = commands.size();
    for (std::size_t i = commands.size(); i-- > 0;) {
      if (is_copy(commands[i])) {
        last_copy = i;
        break;
      }
    }
    for (std::size_t i = 0; last_copy < commands.size() && i < last_copy;
         ++i) {
      if (is_add(commands[i])) {
        sink.add(Severity::kWarning, Check::kAddPlacement,
                 cmd_text(i) + " is an add placed before copy " +
                     cmd_text(last_copy) +
                     "; in-place scripts schedule adds last",
                 i, last_copy);
        break;
      }
    }
  }
  if (!in_place_wanted && sink.errors() == 0) {
    offset_t expected = 0;
    for (std::size_t i = 0; i < commands.size(); ++i) {
      const offset_t to = command_to(commands[i]);
      if (to != expected) {
        sink.add(Severity::kWarning, Check::kWriteDiscontinuity,
                 cmd_text(i) + " writes at " + std::to_string(to) +
                     " where " + std::to_string(expected) +
                     " was expected; sequential deltas write contiguously",
                 i);
        break;
      }
      expected = to + command_length(commands[i]);
    }
  }

  report.command_count = commands.size();
  report.in_place_safe =
      report.well_formed && !sink.structural_error() && conflict_count == 0 &&
      disjoint && slots.size() == commands.size();
}

}  // namespace

Report Verifier::check(ByteView delta) const {
  obs::Span span(obs::Stage::kVerify, delta.size());
  Report report;
  const auto reject = [&report](Check check, std::string message) {
    report.findings.push_back(
        Finding{Severity::kError, check, std::move(message)});
  };

  std::optional<std::pair<DeltaHeader, std::size_t>> parsed;
  try {
    parsed = try_parse_header(delta);
  } catch (const FormatError& e) {
    reject(Check::kContainer, e.what());
    return report;
  }
  if (!parsed) {
    reject(Check::kContainer, "delta header truncated");
    return report;
  }
  const DeltaHeader& header = parsed->first;
  const std::size_t header_bytes = parsed->second;
  report.header = header;

  if (header.payload_length > delta.size() - header_bytes) {
    reject(Check::kContainer,
           "payload truncated: header declares " +
               std::to_string(header.payload_length) + " bytes, " +
               std::to_string(delta.size() - header_bytes) + " present");
    return report;
  }
  if (header_bytes + header.payload_length != delta.size()) {
    reject(Check::kContainer, "trailing garbage after payload");
    return report;
  }
  const ByteView payload = delta.subspan(
      header_bytes, static_cast<std::size_t>(header.payload_length));
  if (adler32(payload) != header.payload_adler) {
    reject(Check::kPayload, "payload checksum mismatch");
    return report;
  }

  Bytes decompressed;
  ByteView stream = payload;
  if (header.compress_payload) {
    if (header.payload_uncompressed > options_.max_payload_bytes) {
      reject(Check::kPayload,
             "declared uncompressed payload of " +
                 std::to_string(header.payload_uncompressed) +
                 " bytes exceeds the " +
                 std::to_string(options_.max_payload_bytes) + "-byte limit");
      return report;
    }
    try {
      decompressed = lzss_decode(
          payload, static_cast<std::size_t>(header.payload_uncompressed));
    } catch (const Error& e) {
      reject(Check::kPayload, e.what());
      return report;
    }
    stream = decompressed;
  }

  std::vector<Command> commands;
  offset_t running_to = 0;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    CommandProbe probe = probe_command(stream.subspan(pos), header.format,
                                       header.version_length, running_to);
    if (probe.status != CommandProbe::Status::kOk) {
      reject(Check::kCodeword,
             cmd_text(commands.size()) + ": " + probe.detail);
      report.command_count = commands.size();
      return report;
    }
    commands.push_back(std::move(*probe.command));
    pos += probe.consumed;
  }

  report.well_formed = true;
  analyze_script(commands, header.reference_length, header.version_length,
                 header.in_place, options_, report);
  return report;
}

Report Verifier::check(const DeltaFile& file) const {
  Report report;
  report.well_formed = true;  // in-memory scripts have no container to fail
  analyze_script(file.script.commands(), file.reference_length,
                 file.version_length, file.in_place, options_, report);
  return report;
}

std::size_t Report::error_count() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::kError;
  return n;
}

std::size_t Report::warning_count() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::kWarning;
  return n;
}

}  // namespace ipd
