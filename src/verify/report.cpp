// Report rendering: the human-facing text listing and the JSON document
// consumed by `ipdelta lint --json` (schema in docs/VERIFY.md).
#include <string>

#include "verify/verifier.hpp"

namespace ipd {
namespace {

/// Minimal JSON string escaping; finding messages are ASCII by
/// construction but quotes and control bytes must not break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* bool_text(bool b) noexcept { return b ? "true" : "false"; }

}  // namespace

const char* severity_name(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

const char* check_name(Check check) noexcept {
  switch (check) {
    case Check::kContainer:
      return "container";
    case Check::kPayload:
      return "payload";
    case Check::kCodeword:
      return "codeword";
    case Check::kOffsetOverflow:
      return "offset-overflow";
    case Check::kReadBounds:
      return "read-bounds";
    case Check::kWriteBounds:
      return "write-bounds";
    case Check::kWriteOverlap:
      return "write-overlap";
    case Check::kCoverage:
      return "coverage";
    case Check::kWriteBeforeRead:
      return "write-before-read";
    case Check::kInPlaceFlag:
      return "in-place-flag";
    case Check::kAddPlacement:
      return "add-placement";
    case Check::kWriteDiscontinuity:
      return "write-discontinuity";
  }
  return "unknown";
}

std::string Report::to_text() const {
  std::string out;
  out += "well-formed:   ";
  out += bool_text(well_formed);
  out += "\nin-place safe: ";
  out += bool_text(in_place_safe);
  out += "\ncommands:      " + std::to_string(command_count);
  out += "\nerrors:        " + std::to_string(error_count());
  out += "\nwarnings:      " + std::to_string(warning_count());
  out += "\n";
  for (const Finding& f : findings) {
    out += severity_name(f.severity);
    out += " [";
    out += check_name(f.check);
    out += "] ";
    out += f.message;
    out += "\n";
  }
  if (findings_truncated) {
    out += "... finding limit reached; diagnosis incomplete\n";
  }
  return out;
}

std::string Report::to_json() const {
  std::string out = "{";
  out += "\"well_formed\":";
  out += bool_text(well_formed);
  out += ",\"in_place_safe\":";
  out += bool_text(in_place_safe);
  out += ",\"ok\":";
  out += bool_text(ok());
  out += ",\"command_count\":" + std::to_string(command_count);
  out += ",\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"findings_truncated\":";
  out += bool_text(findings_truncated);
  if (header) {
    out += ",\"header\":{";
    out += "\"format\":\"";
    out += format_name(header->format);
    out += "\",\"in_place\":";
    out += bool_text(header->in_place);
    out += ",\"compressed\":";
    out += bool_text(header->compress_payload);
    out += ",\"reference_length\":" + std::to_string(header->reference_length);
    out += ",\"version_length\":" + std::to_string(header->version_length);
    out += ",\"version_crc\":" + std::to_string(header->version_crc);
    out += ",\"payload_length\":" + std::to_string(header->payload_length);
    out += "}";
  }
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ",";
    out += "{\"severity\":\"";
    out += severity_name(f.severity);
    out += "\",\"check\":\"";
    out += check_name(f.check);
    out += "\",\"message\":\"" + json_escape(f.message) + "\"";
    if (f.command) out += ",\"command\":" + std::to_string(*f.command);
    if (f.other) out += ",\"other\":" + std::to_string(*f.other);
    if (f.bytes) {
      out += ",\"first\":" + std::to_string(f.bytes->first);
      out += ",\"last\":" + std::to_string(f.bytes->last);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ipd
