// Static delta-safety verifier — the "delta linter".
//
// The paper's contribution is a *static* argument: a permuted delta is
// in-place reconstructible iff its command order induces no
// write-before-read conflict (Equation 2). The converter carries that
// proof while it permutes, but every trust boundary downstream of it —
// the distribution server's cache, the OTA client's flash path, the
// archive loader — historically accepted any byte stream that framed
// correctly. A buggy or malicious encoder could therefore brick a device.
//
// Verifier::check proves or refutes safety without applying anything:
//
//   well-formedness — container header, checksums, codeword stream
//                     (truncated varints, add payload shorter than
//                     declared, unknown opcodes);
//   bounds          — u64 offset+length overflow, copy reads inside
//                     [0, R), writes inside [0, V);
//   coverage        — write intervals pairwise disjoint and exactly
//                     tiling [0, V) (no gaps, no double-writes);
//   in-place        — Equation 2 via the §4.3 interval index in
//                     O(n log n), emitting a counterexample trace
//                     ("conflict: cmd#i reads [a, b] after cmd#j wrote
//                     it") per violation.
//
// Each deviation becomes a Finding with a severity: errors make a delta
// unservable/unflashable, warnings flag style the paper cares about
// (adds not grouped at the end of an in-place script, a sequential
// delta whose writes are not contiguous). Reports render as text or
// JSON (report.cpp) for the `ipdelta lint` CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/types.hpp"
#include "delta/codec.hpp"

namespace ipd {

enum class Severity : std::uint8_t {
  kWarning = 0,  ///< suspicious but servable
  kError = 1,    ///< unsafe: must not be cached, served, or applied
};

/// Which analysis produced a finding; stable names for JSON consumers.
enum class Check : std::uint8_t {
  kContainer = 0,        ///< magic/header/length/trailing-garbage faults
  kPayload = 1,          ///< checksum mismatch or decompression fault
  kCodeword = 2,         ///< command stream malformed or truncated
  kOffsetOverflow = 3,   ///< offset + length wraps around u64
  kReadBounds = 4,       ///< copy reads outside the reference file
  kWriteBounds = 5,      ///< command writes outside the version file
  kWriteOverlap = 6,     ///< two commands write the same version byte
  kCoverage = 7,         ///< version bytes no command writes
  kWriteBeforeRead = 8,  ///< Equation 2 violation (conflict trace)
  kInPlaceFlag = 9,      ///< header claims in-place but conflicts exist
  kAddPlacement = 10,    ///< in-place script with adds before copies
  kWriteDiscontinuity = 11,  ///< sequential delta with permuted writes
};

const char* severity_name(Severity severity) noexcept;
const char* check_name(Check check) noexcept;

/// One diagnostic: what failed, where, and — for conflict traces — the
/// pair of commands plus the byte range that ties them together.
struct Finding {
  Severity severity = Severity::kError;
  Check check = Check::kContainer;
  std::string message;
  /// Serial index of the offending command (the reader, for conflicts).
  std::optional<std::size_t> command;
  /// Serial index of the other party (the earlier writer, for conflicts
  /// and overlaps).
  std::optional<std::size_t> other;
  /// Version/reference byte range the finding is about.
  std::optional<Interval> bytes;
};

struct VerifyOptions {
  /// Treat write-before-read conflicts as errors even when the header
  /// does not claim in-place applicability. Set by consumers that will
  /// apply without scratch space (OTA flash path, `lint --require-in-place`).
  bool require_in_place = false;
  /// Stop collecting findings after this many (the verdict booleans are
  /// still exact); guards the report against adversarial deltas built
  /// purely out of violations.
  std::size_t max_findings = 64;
  /// Refuse compressed payloads declaring more than this many decoded
  /// bytes before allocating — the lint must not be the allocation bomb.
  std::uint64_t max_payload_bytes = 1ull << 30;
};

struct Report {
  /// Container parsed, checksums matched, every codeword decoded.
  bool well_formed = false;
  /// Equation 2 holds (meaningful once well_formed and bounds are clean):
  /// the script can be applied in place in its serial order.
  bool in_place_safe = false;
  /// Parsed container header, when the container was readable at all.
  std::optional<DeltaHeader> header;
  std::size_t command_count = 0;
  std::vector<Finding> findings;
  /// max_findings was hit; findings is a prefix of the full diagnosis.
  bool findings_truncated = false;

  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  /// Safe to cache/serve/apply: no error-severity findings.
  bool ok() const noexcept { return error_count() == 0; }

  /// Human-readable multi-line rendering (one finding per line).
  std::string to_text() const;
  /// Machine-readable rendering; schema documented in docs/VERIFY.md.
  std::string to_json() const;
};

class Verifier {
 public:
  Verifier() = default;
  explicit Verifier(VerifyOptions options) : options_(options) {}

  /// Statically analyze a serialized delta container. Never throws on
  /// bad input — malformed bytes become findings.
  Report check(ByteView delta) const;

  /// Analyze an already-decoded delta (converter output before
  /// serialization; archive entries). Skips the container checks.
  Report check(const DeltaFile& file) const;

  const VerifyOptions& options() const noexcept { return options_; }

 private:
  VerifyOptions options_;
};

}  // namespace ipd
