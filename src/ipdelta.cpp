#include "ipdelta.hpp"

#include <algorithm>

#include "core/checksum.hpp"
#include "obs/trace.hpp"

namespace ipd {

Pipeline::Pipeline(const PipelineOptions& options, ThreadPool* shared_pool)
    : options_(options),
      differ_(make_differ(options.differ, options.differ_options)),
      parallelism_(effective_parallelism(options.parallelism)),
      shared_pool_(shared_pool) {
  if (shared_pool_ != nullptr) {
    // The calling thread participates, so fan-out beyond the pool's
    // width + 1 could never run concurrently anyway.
    parallelism_ = std::min(parallelism_, shared_pool_->worker_count() + 1);
  }
}

SegmentPlanOptions Pipeline::segment_plan() const noexcept {
  SegmentPlanOptions plan;
  plan.min_input = options_.min_parallel_input;
  plan.segment_bytes = options_.parallel_segment_bytes;
  return plan;
}

ParallelContext Pipeline::context(std::size_t version_size) const {
  if (parallelism_ <= 1 || version_size < options_.min_parallel_input) {
    return {};
  }
  ThreadPool* pool = shared_pool_;
  if (pool == nullptr) {
    // Lazy: a pipeline that only ever sees small inputs spawns nothing.
    std::call_once(pool_once_, [this] {
      owned_pool_ = std::make_unique<ThreadPool>(parallelism_ - 1);
    });
    pool = owned_pool_.get();
  }
  return ParallelContext{pool, parallelism_};
}

BuildResult Pipeline::build_delta(ByteView reference, ByteView version) const {
  const std::uint64_t t0 = obs::now_ns();
  BuildResult result;

  ParallelDiffResult diffed = [&] {
    obs::Span span(obs::Stage::kDiff, reference.size() + version.size());
    return diff_parallel(*differ_, reference, version, segment_plan(),
                         context(version.size()));
  }();
  result.timing.diff_ns = obs::now_ns() - t0;
  result.timing.diff_segments = diffed.segments;
  result.stats.script = diffed.script.summary();

  DeltaFile file;
  file.format = options_.plain_format();
  // Some scripts are conflict-free as produced (e.g. all-add deltas, or
  // pure forward moves); mark them so devices can skip conversion.
  file.in_place = satisfies_equation2(diffed.script);
  file.compress_payload = options_.compress_payload;
  file.reference_length = reference.size();
  file.version_length = version.size();
  file.version_crc = crc32c(version);
  file.script = std::move(diffed.script);
  const std::uint64_t t1 = obs::now_ns();
  {
    obs::Span span(obs::Stage::kEncode);
    result.delta = serialize_delta(file);
    span.add_bytes(result.delta.size());
  }
  result.timing.encode_ns = obs::now_ns() - t1;
  result.timing.total_ns = obs::now_ns() - t0;
  result.stats.compression = CompressionSample{
      reference.size(), version.size(), result.delta.size()};
  return result;
}

BuildResult Pipeline::build_inplace(ByteView reference,
                                    ByteView version) const {
  const std::uint64_t t0 = obs::now_ns();
  BuildResult result;
  const ParallelContext ctx = context(version.size());

  const ParallelDiffResult diffed = [&] {
    obs::Span span(obs::Stage::kDiff, reference.size() + version.size());
    return diff_parallel(*differ_, reference, version, segment_plan(), ctx);
  }();
  result.timing.diff_ns = obs::now_ns() - t0;
  result.timing.diff_segments = diffed.segments;

  ConvertOptions convert = options_.convert;
  convert.format = options_.inplace_format();
  const std::uint64_t t1 = obs::now_ns();
  ConvertResult converted =
      convert_to_inplace(diffed.script, reference, convert, ctx);
  result.timing.convert_ns = obs::now_ns() - t1;
  result.report = converted.report;
  result.timing.crwi_chunks = converted.report.crwi_parallel_chunks;
  result.stats.script = converted.script.summary();

  const std::uint64_t t2 = obs::now_ns();
  result.delta =
      serialize_inplace(std::move(converted.script), convert.format, reference,
                        version, options_.compress_payload);
  result.timing.encode_ns = obs::now_ns() - t2;
  result.timing.total_ns = obs::now_ns() - t0;
  result.stats.compression = CompressionSample{
      reference.size(), version.size(), result.delta.size()};
  return result;
}

Bytes Pipeline::apply(ByteView delta, ByteView reference) const {
  const auto parsed = try_parse_header(delta);
  if (!parsed) {
    throw FormatError("delta shorter than its header");
  }
  const DeltaHeader& header = parsed->first;
  if (header.in_place) {
    // The device-side contract: one buffer sized for whichever of the
    // two versions is larger, holding the reference on entry.
    Bytes buffer(reference.begin(), reference.end());
    buffer.resize(std::max<std::size_t>(header.reference_length,
                                        header.version_length));
    const length_t version_length = apply_delta_inplace(delta, buffer);
    buffer.resize(version_length);
    return buffer;
  }
  return apply_delta(delta, reference);
}

}  // namespace ipd
