#include "ipdelta.hpp"

#include "core/checksum.hpp"
#include "obs/trace.hpp"

namespace ipd {

Bytes create_delta(ByteView reference, ByteView version, DeltaFormat format,
                   const PipelineOptions& options) {
  Script script = [&] {
    obs::Span span(obs::Stage::kDiff, reference.size() + version.size());
    return diff_bytes(options.differ, reference, version,
                      options.differ_options);
  }();
  DeltaFile file;
  file.format = format;
  // Some scripts are conflict-free as produced (e.g. all-add deltas, or
  // pure forward moves); mark them so devices can skip conversion.
  file.in_place = satisfies_equation2(script);
  file.compress_payload = options.compress_payload;
  file.reference_length = reference.size();
  file.version_length = version.size();
  file.version_crc = crc32c(version);
  file.script = std::move(script);
  obs::Span span(obs::Stage::kEncode);
  Bytes out = serialize_delta(file);
  span.add_bytes(out.size());
  return out;
}

Bytes create_inplace_delta(ByteView reference, ByteView version,
                           const PipelineOptions& options,
                           ConvertReport* report_out) {
  const Script script = [&] {
    obs::Span span(obs::Stage::kDiff, reference.size() + version.size());
    return diff_bytes(options.differ, reference, version,
                      options.differ_options);
  }();
  return make_inplace_delta(script, reference, version, options.convert,
                            report_out, options.compress_payload);
}

}  // namespace ipd
