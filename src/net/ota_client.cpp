#include "net/ota_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <variant>

#include "apply/stream_applier.hpp"
#include "core/checksum.hpp"
#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"
#include "verify/verifier.hpp"

namespace ipd {

namespace {

/// The server refused a RESUME: the artifact changed since the transfer
/// started and it advises restarting from GET_DELTA. Recoverable only
/// where nothing has been applied yet — download_hop discards its
/// journal and re-requests; stream_hop lets it escape as a fatal Error
/// because the in-place buffer already absorbed part of the old
/// artifact.
class BadResumeError : public Error {
 public:
  using Error::Error;
};

/// Receive one message, translating the failure modes: clean EOF and
/// server-busy are retryable (TransportError); a refused resume is
/// BadResumeError (recoverable only by restarting the transfer); any
/// other ERROR frame is a permanent protocol answer and escapes the
/// retry loop as Error.
Message expect_message(FramedConnection& conn) {
  std::optional<Message> message = conn.receive();
  if (!message) {
    throw TransportError(NetErrc::kPeerClosed,
                         "server closed the connection mid-conversation");
  }
  if (const auto* err = std::get_if<ErrorMsg>(&*message)) {
    if (err->code == ErrorCode::kBusy) {
      throw TransportError(NetErrc::kBusy, "server busy: " + err->message);
    }
    if (err->code == ErrorCode::kShed) {
      throw TransportError(NetErrc::kShed,
                           "server shedding load: " + err->message);
    }
    if (err->code == ErrorCode::kBadResume) {
      throw BadResumeError("server refused resume: " + err->message);
    }
    throw Error("server error: " + err->message);
  }
  return std::move(*message);
}

template <typename T>
T expect(FramedConnection& conn, const char* what) {
  Message message = expect_message(conn);
  if (T* typed = std::get_if<T>(&message)) return std::move(*typed);
  throw Error(std::string("protocol violation: expected ") + what);
}

/// The update-level trace context: a child when a caller (campaign,
/// CLI) already opened a scope, a fresh root otherwise.
obs::TraceContext mint_update_trace() {
  const obs::TraceContext& outer = obs::current_trace();
  return outer.valid() ? obs::child_of(outer) : obs::mint_trace();
}

/// Dump the active flight recorder (if any) on a failure path.
void dump_active_flight(const char* reason) {
  if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
    obs::dump_flight(*fr, reason);
  }
}

}  // namespace

OtaClient::OtaClient(TransportFactory factory, const OtaClientOptions& options,
                     ServiceMetrics* metrics)
    : factory_(std::move(factory)), options_(options), metrics_(metrics) {}

OtaClient::Session OtaClient::connect_session() {
  for (;;) {
    Session session;
    session.transport = factory_();
    if (session.transport == nullptr) {
      throw TransportError(NetErrc::kNoTransport,
                           "transport factory returned no connection");
    }
    if (options_.read_timeout_ms > 0) {
      session.transport->set_read_timeout(options_.read_timeout_ms);
    }
    session.conn = std::make_unique<FramedConnection>(*session.transport);
    session.conn->send(HelloMsg{offer_version_, options_.max_chunk});

    // Receive the HELLO reply by hand rather than via expect<>: an old
    // server answers a kProtocolVersionTraced offer with
    // ERROR{kProtocol}, which must downgrade and reconnect, not escape
    // as a fatal Error.
    std::optional<Message> reply = session.conn->receive();
    if (!reply) {
      throw TransportError(NetErrc::kPeerClosed,
                           "server closed the connection mid-conversation");
    }
    if (const auto* err = std::get_if<ErrorMsg>(&*reply)) {
      if (err->code == ErrorCode::kProtocol &&
          offer_version_ > kProtocolVersion) {
        offer_version_ = kProtocolVersion;
        session.transport->close();
        continue;  // reconnect speaking v1
      }
      if (err->code == ErrorCode::kBusy) {
        throw TransportError(NetErrc::kBusy, "server busy: " + err->message);
      }
      if (err->code == ErrorCode::kShed) {
        throw TransportError(NetErrc::kShed,
                             "server shedding load: " + err->message);
      }
      throw Error("server error: " + err->message);
    }
    const auto* ack = std::get_if<HelloAckMsg>(&*reply);
    if (ack == nullptr) {
      throw Error("protocol violation: expected HELLO_ACK");
    }
    if (ack->protocol_version != offer_version_ &&
        ack->protocol_version != kProtocolVersion) {
      throw Error("server speaks protocol version " +
                  std::to_string(ack->protocol_version) + ", we offered " +
                  std::to_string(offer_version_));
    }
    session.traced = ack->protocol_version >= kProtocolVersionTraced;
    return session;
  }
}

void OtaClient::backoff(std::size_t attempt, OtaReport& report) {
  ++report.retries;
  if (metrics_ != nullptr) {
    metrics_->net_retries.fetch_add(1, std::memory_order_relaxed);
  }
  const int shift = attempt > 16 ? 16 : static_cast<int>(attempt);
  const long long ms =
      std::min<long long>(static_cast<long long>(options_.backoff_initial_ms)
                              << (shift - 1),
                          options_.backoff_max_ms);
  const std::uint64_t ns = static_cast<std::uint64_t>(ms) * 1'000'000;
  report.backoff_ns += ns;
  obs::global_events().push(obs::EventType::kNetRetry, attempt, ns);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

OtaReport OtaClient::update_streaming(Bytes& image, ReleaseId current,
                                      ReleaseId target) {
  const obs::TraceContext trace = mint_update_trace();
  const obs::TraceScope scope(trace);
  obs::FlightRecorder flight("ota:stream " + std::to_string(current) + "->" +
                                 std::to_string(target),
                             trace);
  const obs::FlightScope flight_scope(flight);
  OtaReport report;
  while (current < target) {
    current = stream_hop(image, current, target, report);
    ++report.hops;
  }
  report.final_release = current;
  return report;
}

ReleaseId OtaClient::stream_hop(Bytes& image, ReleaseId current,
                                ReleaseId target, OtaReport& report) {
  // Hop state lives across attempts: the applier's consumed-byte count
  // *is* the resume offset, so a reconnect continues mid-command without
  // re-applying anything.
  DeltaBeginMsg meta;
  std::unique_ptr<StreamingInplaceApplier> applier;
  std::uint64_t received = 0;
  bool begun = false;

  std::size_t attempt = 0;
  for (;;) {
    // Each attempt is its own span (a child of the update trace) so the
    // merged timeline shows every reconnect, and the server's serve
    // spans parent onto the attempt that actually reached it.
    const obs::TraceContext attempt_ctx = obs::child_of(obs::current_trace());
    const obs::TraceScope attempt_scope(attempt_ctx);
    obs::WatchdogGuard watchdog("client stream_hop", attempt_ctx,
                                options_.stall_deadline_ms * 1'000'000);
    Session session;
    try {
      obs::Span span(obs::Stage::kNetRequest);
      session = connect_session();
      FramedConnection& conn = *session.conn;
      if (session.traced && attempt_ctx.valid()) {
        conn.set_outbound_trace(attempt_ctx);
      }
      if (!begun) {
        conn.send(GetDeltaMsg{current, target});
      } else {
        ++report.resumes;
        // `to` is the original GET_DELTA target, not the hop target: the
        // server re-derives the same route (deterministic pipeline), so
        // DELTA_BEGIN.last_hop stays truthful on resumed transfers.
        conn.send(ResumeMsg{meta.from, target, received, meta.artifact_crc});
      }
      const auto begin = expect<DeltaBeginMsg>(conn, "DELTA_BEGIN");
      if (!begun) {
        if (begin.from != current || begin.start_offset != 0 ||
            begin.to <= current) {
          throw Error("protocol violation: DELTA_BEGIN does not match the "
                      "request");
        }
        meta = begin;
        if (begin.full_image) {
          image.resize(static_cast<std::size_t>(
              std::max<std::uint64_t>(image.size(), begin.version_length)));
        } else {
          image.resize(static_cast<std::size_t>(std::max(
              begin.reference_length, begin.version_length)));
          applier = std::make_unique<StreamingInplaceApplier>(
              MutByteView(image));
        }
        begun = true;
      } else if (begin.artifact_crc != meta.artifact_crc ||
                 begin.start_offset != received) {
        // The server refused or mangled the resume; the partially
        // applied image cannot absorb a different artifact.
        throw Error("resume mismatch: server offered a different artifact "
                    "or offset");
      }

      for (;;) {
        Message message = expect_message(conn);
        if (auto* data = std::get_if<DeltaDataMsg>(&message)) {
          if (data->offset != received) {
            throw Error("protocol violation: DELTA_DATA at offset " +
                        std::to_string(data->offset) + ", expected " +
                        std::to_string(received));
          }
          if (data->data.size() > meta.total_size - received) {
            throw Error("protocol violation: DELTA_DATA overruns the "
                        "announced artifact size");
          }
          if (applier != nullptr) {
            try {
              applier->feed(data->data);
            } catch (const Error& e) {
              // Frame CRCs passed, so these bytes are what the server
              // sent: the artifact itself is bad. Retrying cannot help
              // and the buffer is poisoned — fail the update loudly.
              throw Error(std::string("artifact rejected mid-stream: ") +
                          e.what());
            }
          } else {
            // The applier path bounds-checks internally; this raw copy
            // must not trust server-controlled sizes. total_size and
            // version_length are announced independently, so check the
            // actual destination buffer, not just the artifact size.
            if (data->data.size() > image.size() - received) {
              throw Error("protocol violation: DELTA_DATA overruns the "
                          "image buffer");
            }
            std::copy(data->data.begin(), data->data.end(),
                      image.begin() + static_cast<std::ptrdiff_t>(
                                          data->offset));
          }
          received += data->data.size();
          report.artifact_bytes += data->data.size();
          span.add_bytes(data->data.size());
          watchdog.progress(received);
        } else if (auto* end = std::get_if<DeltaEndMsg>(&message)) {
          if (end->total_size != received ||
              end->artifact_crc != meta.artifact_crc) {
            throw TransportError(NetErrc::kTruncated,
                                 "artifact ended early (" +
                                     std::to_string(received) + " of " +
                                     std::to_string(end->total_size) +
                                     " bytes)");
          }
          if (applier != nullptr) {
            if (!applier->finished()) {
              throw Error("artifact complete on the wire but the delta "
                          "stream did not finish: truncated or corrupt "
                          "container");
            }
          } else if (crc32c(ByteView(image.data(),
                                     static_cast<std::size_t>(
                                         meta.version_length))) !=
                     meta.artifact_crc) {
            throw Error("full image failed its checksum after reassembly");
          }
          image.resize(static_cast<std::size_t>(meta.version_length));
          report.bytes_received += conn.bytes_received();
          return meta.to;
        } else {
          throw Error("protocol violation: unexpected frame inside a "
                      "transfer");
        }
      }
    } catch (const TransportError&) {
      // fall through to retry
    } catch (const FormatError&) {
      // corrupt frame (e.g. injected bit flip) — stream unusable, resume
    } catch (const BadResumeError&) {
      // Fatal here: the in-place buffer already absorbed part of the old
      // artifact, so a restarted transfer cannot be applied. Leave the
      // evidence before escaping.
      dump_active_flight("fatal bad resume mid-stream");
      throw;
    }
    if (session.conn != nullptr) {
      report.bytes_received += session.conn->bytes_received();
    }
    ++attempt;
    if (attempt >= options_.max_attempts) {
      dump_active_flight("transfer abort: attempts exhausted");
      throw Error("update failed after " + std::to_string(attempt) +
                  " attempts (hop " + std::to_string(current) + " -> " +
                  std::to_string(target) + ")");
    }
    backoff(attempt, report);
  }
}

void OtaClient::download_hop(TransferJournal& journal, ReleaseId current,
                             ReleaseId target, OtaReport& report) {
  if (journal.active && journal.total_size > 0 &&
      journal.received.size() == journal.total_size) {
    return;  // download already complete; only the apply is pending
  }
  std::size_t attempt = 0;
  for (;;) {
    const obs::TraceContext attempt_ctx = obs::child_of(obs::current_trace());
    const obs::TraceScope attempt_scope(attempt_ctx);
    obs::WatchdogGuard watchdog("client download_hop", attempt_ctx,
                                options_.stall_deadline_ms * 1'000'000);
    Session session;
    try {
      obs::Span span(obs::Stage::kNetRequest);
      session = connect_session();
      FramedConnection& conn = *session.conn;
      if (session.traced && attempt_ctx.valid()) {
        conn.set_outbound_trace(attempt_ctx);
      }
      if (!journal.active) {
        conn.send(GetDeltaMsg{current, target});
      } else {
        ++report.resumes;
        // As in stream_hop: echo the original target so the server
        // re-derives the same route and last_hop stays truthful.
        conn.send(ResumeMsg{journal.from, target, journal.received.size(),
                            journal.artifact_crc});
      }
      const auto begin = expect<DeltaBeginMsg>(conn, "DELTA_BEGIN");
      if (!journal.active) {
        if (begin.from != current || begin.start_offset != 0 ||
            begin.to <= current) {
          throw Error("protocol violation: DELTA_BEGIN does not match the "
                      "request");
        }
        journal.active = true;
        journal.from = begin.from;
        journal.hop_to = begin.to;
        journal.full_image = begin.full_image != 0;
        journal.total_size = begin.total_size;
        journal.reference_length = begin.reference_length;
        journal.version_length = begin.version_length;
        journal.artifact_crc = begin.artifact_crc;
        // No reserve(total_size): it is a server-supplied u64, and one
        // hostile DELTA_BEGIN must not commit gigabytes up front. The
        // buffer grows only as CRC-verified chunks actually arrive.
        journal.received.clear();
      } else if (begin.artifact_crc != journal.artifact_crc ||
                 begin.start_offset != journal.received.size()) {
        throw Error("resume mismatch: server offered a different artifact "
                    "or offset");
      }

      for (;;) {
        Message message = expect_message(conn);
        if (auto* data = std::get_if<DeltaDataMsg>(&message)) {
          if (data->offset != journal.received.size()) {
            throw Error("protocol violation: DELTA_DATA out of order");
          }
          if (data->data.size() >
              journal.total_size - journal.received.size()) {
            throw Error("protocol violation: DELTA_DATA overruns the "
                        "announced artifact size");
          }
          journal.received.insert(journal.received.end(), data->data.begin(),
                                  data->data.end());
          span.add_bytes(data->data.size());
          watchdog.progress(journal.received.size());
        } else if (auto* end = std::get_if<DeltaEndMsg>(&message)) {
          if (end->total_size != journal.received.size() ||
              end->artifact_crc != journal.artifact_crc) {
            throw TransportError(NetErrc::kTruncated, "artifact ended early");
          }
          // Defense in depth: per-frame CRCs already vetted every chunk,
          // but the whole-artifact checksum is what the device trusts
          // before it starts destroying its only reference copy.
          if (crc32c(journal.received) != journal.artifact_crc) {
            throw Error("artifact failed its end-to-end checksum");
          }
          report.bytes_received += conn.bytes_received();
          report.artifact_bytes += journal.received.size();
          return;
        } else {
          throw Error("protocol violation: unexpected frame inside a "
                      "transfer");
        }
      }
    } catch (const BadResumeError&) {
      // The artifact changed between attempts and the server advises
      // restarting from GET_DELTA. Nothing has been applied yet, so the
      // journaled prefix is disposable: discard it and re-request the
      // hop from scratch. (stream_hop cannot do this — its in-place
      // buffer already absorbed part of the old artifact — so there the
      // same error stays fatal.)
      if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
        fr->note("bad resume: discarding transfer journal, re-requesting");
      }
      journal = TransferJournal{};
    } catch (const TransportError&) {
    } catch (const FormatError&) {
    }
    if (session.conn != nullptr) {
      report.bytes_received += session.conn->bytes_received();
    }
    ++attempt;
    if (attempt >= options_.max_attempts) {
      dump_active_flight("transfer abort: attempts exhausted");
      throw Error("download failed after " + std::to_string(attempt) +
                  " attempts (hop " + std::to_string(current) + " -> " +
                  std::to_string(target) + ")");
    }
    backoff(attempt, report);
  }
}

OtaReport OtaClient::update_device(FlashDevice& device,
                                   const JournalRegion& journal,
                                   ReleaseId current, ReleaseId target,
                                   const ChannelModel& channel,
                                   TransferJournal* transfer) {
  const obs::TraceContext trace = mint_update_trace();
  const obs::TraceScope scope(trace);
  obs::FlightRecorder flight("ota:staged " + std::to_string(current) + "->" +
                                 std::to_string(target),
                             trace);
  const obs::FlightScope flight_scope(flight);
  OtaReport report;
  TransferJournal local;
  TransferJournal& tj = transfer != nullptr ? *transfer : local;
  if (tj.active) {
    if (tj.from >= current && tj.from < target) {
      // The journal belongs to a later hop of this same upgrade — the
      // caller's `current` went stale (e.g. a crash landed between the
      // apply finishing and the caller recording the new release). The
      // downloaded prefix is still consistent with the device, so trust
      // the journal forward instead of throwing away its bytes — or,
      // worse, re-requesting a hop the flash journal may be mid-apply
      // on, whose delta would then shred the half-written image.
      current = tj.from;
    } else {
      tj = TransferJournal{};  // journal from another lifetime — discard
    }
  }
  while (current < target) {
    download_hop(tj, current, target, report);
    if (tj.full_image) {
      // Idempotent: a torn write is simply redone on the next call.
      device.write(0, tj.received);
    } else {
      // Last line of defense before the first flash write: the frame
      // checksums only prove the bytes arrived intact, not that the
      // delta is safe to apply without scratch space. A server bug (or
      // a hostile server) must not be able to brick this device.
      const Verifier verifier(VerifyOptions{.require_in_place = true});
      const Report verdict = verifier.check(ByteView(tj.received));
      if (metrics_ != nullptr && verdict.warning_count() > 0) {
        metrics_->verify_warns.fetch_add(verdict.warning_count(),
                                         std::memory_order_relaxed);
      }
      if (!verdict.ok()) {
        if (metrics_ != nullptr) {
          metrics_->verify_rejects.fetch_add(1, std::memory_order_relaxed);
        }
        std::string why = "unsafe delta refused before flash write";
        for (const Finding& f : verdict.findings) {
          if (f.severity == Severity::kError) {
            why += ": " + f.message;
            break;
          }
        }
        obs::global_events().push(obs::EventType::kJournalPoison, current,
                                  tj.hop_to, why);
        // The push above already mirrored the event into the flight
        // recorder; dump the whole buffer before the error escapes.
        obs::dump_flight(flight, "verify reject before flash write");
        tj = TransferJournal{};  // the artifact is poison; never resume it
        throw Error(why);
      }
      // PowerFailure propagates with `tj` intact; the next call skips
      // the download and the flash journal resumes the apply.
      apply_update_resumable(device, tj.received, channel, journal);
    }
    ++report.hops;
    current = tj.hop_to;
    tj = TransferJournal{};
  }
  report.final_release = current;
  return report;
}

OtaReport OtaClient::update_device_streaming(
    FlashDevice& device, const JournalRegion& journal, ReleaseId current,
    ReleaseId target, const StreamUpdaterOptions& apply_options) {
  const obs::TraceContext trace = mint_update_trace();
  const obs::TraceScope scope(trace);
  obs::FlightRecorder flight("ota:device-stream " + std::to_string(current) +
                                 "->" + std::to_string(target),
                             trace);
  const obs::FlightScope flight_scope(flight);
  OtaReport report;
  for (;;) {
    // The apply journal is the device's durable memory of this upgrade:
    // a done record fast-forwards a `current` that went stale when the
    // crash landed between the apply and the acknowledgement; an
    // in-flight record forces that hop to finish regardless of what the
    // caller believes the device runs.
    std::optional<StreamApplyProbe> probe =
        StreamingDeviceUpdater::probe(device, journal, apply_options);
    if (probe && probe->done) {
      current = std::max(current, probe->info.meta_hop);
      probe.reset();
    }
    if (!probe && current >= target) {
      break;
    }
    current = stream_device_hop(device, journal, current, target,
                                std::move(probe), apply_options, report);
    ++report.hops;
  }
  report.final_release = current;
  return report;
}

ReleaseId OtaClient::stream_device_hop(
    FlashDevice& device, const JournalRegion& journal, ReleaseId current,
    ReleaseId target, std::optional<StreamApplyProbe> probe,
    const StreamUpdaterOptions& apply_options, OtaReport& report) {
  StreamArtifactInfo info;
  std::unique_ptr<StreamingDeviceUpdater> updater;
  if (probe) {
    // Reboot recovery: reconstruct the mid-hop state from the journal
    // alone — header, command position, checksum state, undo window.
    info = probe->info;
    updater = std::make_unique<StreamingDeviceUpdater>(device, journal, info,
                                                       apply_options);
    if (updater->finished()) {
      return info.meta_hop;
    }
  }
  std::size_t attempt = 0;
  for (;;) {
    const obs::TraceContext attempt_ctx = obs::child_of(obs::current_trace());
    const obs::TraceScope attempt_scope(attempt_ctx);
    obs::WatchdogGuard watchdog("client stream_device_hop", attempt_ctx,
                                options_.stall_deadline_ms * 1'000'000);
    Session session;
    try {
      obs::Span span(obs::Stage::kNetRequest);
      session = connect_session();
      FramedConnection& conn = *session.conn;
      if (session.traced && attempt_ctx.valid()) {
        conn.set_outbound_trace(attempt_ctx);
      }
      if (updater == nullptr) {
        conn.send(GetDeltaMsg{current, target});
      } else {
        ++report.resumes;
        // As in stream_hop: echo the original target so the server
        // re-derives the same route and the artifact identity matches.
        conn.send(ResumeMsg{info.meta_from, info.meta_target,
                            updater->next_offset(), info.artifact_crc});
      }
      const auto begin = expect<DeltaBeginMsg>(conn, "DELTA_BEGIN");
      if (updater == nullptr) {
        if (begin.from != current || begin.start_offset != 0 ||
            begin.to <= current) {
          throw Error("protocol violation: DELTA_BEGIN does not match the "
                      "request");
        }
        info.artifact_crc = begin.artifact_crc;
        info.artifact_size = begin.total_size;
        info.full_image = begin.full_image != 0;
        info.meta_from = begin.from;
        info.meta_hop = begin.to;
        info.meta_target = target;
        // The updater journals a write-ahead checkpoint before its first
        // flash write; from here on the hop survives power cuts.
        updater = std::make_unique<StreamingDeviceUpdater>(
            device, journal, info, apply_options);
      } else if (begin.artifact_crc != info.artifact_crc ||
                 begin.start_offset != updater->next_offset()) {
        throw Error("resume mismatch: server offered a different artifact "
                    "or offset");
      }

      for (;;) {
        Message message = expect_message(conn);
        if (auto* data = std::get_if<DeltaDataMsg>(&message)) {
          if (data->offset != updater->next_offset()) {
            throw Error("protocol violation: DELTA_DATA at offset " +
                        std::to_string(data->offset) + ", expected " +
                        std::to_string(updater->next_offset()));
          }
          try {
            updater->feed(data->data);
          } catch (const FlashDevice::PowerFailure&) {
            throw;  // the simulated crash — the journal resumes the hop
          } catch (const Error& e) {
            // Frame CRCs passed, so these bytes are what the server
            // sent: the artifact itself is bad (or violates the device's
            // safety gates). Retrying cannot help.
            throw Error(std::string("artifact rejected mid-stream: ") +
                        e.what());
          }
          report.artifact_bytes += data->data.size();
          span.add_bytes(data->data.size());
          watchdog.progress(updater->next_offset());
        } else if (auto* end = std::get_if<DeltaEndMsg>(&message)) {
          if (end->total_size != updater->next_offset() ||
              end->artifact_crc != info.artifact_crc) {
            throw TransportError(
                NetErrc::kTruncated,
                "artifact ended early (" +
                    std::to_string(updater->next_offset()) + " of " +
                    std::to_string(end->total_size) + " bytes)");
          }
          if (!updater->finished()) {
            throw Error("artifact complete on the wire but the apply did "
                        "not finish: truncated or corrupt container");
          }
          report.bytes_received += conn.bytes_received();
          return info.meta_hop;
        } else {
          throw Error("protocol violation: unexpected frame inside a "
                      "transfer");
        }
      }
    } catch (const TransportError&) {
      // fall through to retry; the updater's position is the resume point
    } catch (const FormatError&) {
      // corrupt frame (e.g. injected bit flip) — the frame CRC rejected
      // it before any byte reached the updater; reconnect and resume
    } catch (const BadResumeError&) {
      // Fatal here: flash already holds part of the old artifact; only
      // the journal can finish this hop. Leave evidence before escaping.
      dump_active_flight("fatal bad resume mid-apply");
      throw;
    }
    if (session.conn != nullptr) {
      report.bytes_received += session.conn->bytes_received();
    }
    ++attempt;
    if (attempt >= options_.max_attempts) {
      dump_active_flight("transfer abort: attempts exhausted");
      throw Error("update failed after " + std::to_string(attempt) +
                  " attempts (hop " + std::to_string(current) + " -> " +
                  std::to_string(target) + ")");
    }
    backoff(attempt, report);
  }
}

std::string OtaClient::fetch_metrics() {
  Session session = connect_session();
  session.conn->send(MetricsReqMsg{});
  return expect<MetricsMsg>(*session.conn, "METRICS").text;
}

std::string OtaClient::fetch_stats() {
  Session session = connect_session();
  session.conn->send(StatsReqMsg{});
  return expect<StatsMsg>(*session.conn, "STATS").text;
}

}  // namespace ipd
