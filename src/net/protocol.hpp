// Message layer of the delta distribution protocol: the typed bodies that
// ride inside frames (net/frame.hpp).
//
// Conversation (client left, server right):
//
//   HELLO{version, max_chunk}        ─►
//                                    ◄─  HELLO_ACK{version, releases, latest}
//   GET_DELTA{from, to}              ─►
//                                    ◄─  DELTA_BEGIN{hop metadata}
//                                    ◄─  DELTA_DATA{offset, bytes}  (repeated)
//                                    ◄─  DELTA_END{size, crc}
//   ... client applies, asks for the next hop, until it runs `to` ...
//
// One request streams exactly ONE artifact — the first hop of whatever
// route the service chose (direct delta, chain hop, or full image). A
// chained upgrade is the client asking again from its new release, which
// is precisely how a constrained device wants it: one in-place apply at a
// time, never more than one artifact's state in flight.
//
// RESUME{from, to, offset, crc} restarts an interrupted artifact transfer
// mid-stream: `from`/`to` repeat the original GET_DELTA request, and the
// server re-serves the same artifact (cache makes this cheap, the
// deterministic pipeline makes it byte-identical — guarded by the crc
// echo) starting at `offset`. ERROR carries a machine-readable code so
// clients can tell retryable congestion (kShed, kBusy) from permanent
// failures (kBadRequest). METRICS_REQ/METRICS expose the server's ServiceMetrics
// snapshot for fleet dashboards.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "net/frame.hpp"
#include "server/version_store.hpp"

namespace ipd {

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,  ///< malformed ids / unknown release — do not retry
  kBusy = 2,        ///< pre-reactor servers' congestion code — modern
                    ///< servers send kShed; clients honor both
  kBadResume = 3,   ///< offset/crc does not match the artifact
  kInternal = 4,    ///< server-side failure building the artifact
  kProtocol = 5,    ///< unexpected message for the session state
  kShed = 6,        ///< load shed: the server is saturated (connection or
                    ///< build-queue limit) and refused this request
                    ///< instead of stalling — retry after backoff
};

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  /// Largest DELTA_DATA payload the client wants per frame.
  std::uint32_t max_chunk = 64u << 10;
};

struct HelloAckMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t release_count = 0;
  ReleaseId latest = 0;
  /// Chunk size the server will actually use (min of both preferences).
  std::uint32_t chunk = 64u << 10;
};

struct GetDeltaMsg {
  ReleaseId from = 0;
  ReleaseId to = 0;
};

struct ResumeMsg {
  ReleaseId from = 0;
  /// The release the client ultimately wants — the same `to` as the
  /// interrupted GET_DELTA, *not* the hop target. The server re-derives
  /// the route from it, so DELTA_BEGIN.last_hop stays truthful on
  /// resumed mid-route transfers; the CRC echo pins the artifact.
  ReleaseId to = 0;
  std::uint64_t offset = 0;
  std::uint32_t artifact_crc = 0;  ///< CRC-32C of the whole artifact
};

struct DeltaBeginMsg {
  ReleaseId from = 0;
  ReleaseId to = 0;  ///< hop target; may be < the requested release
  std::uint8_t full_image = 0;
  std::uint8_t last_hop = 0;  ///< to == the release the client asked for
  std::uint64_t total_size = 0;       ///< artifact bytes
  std::uint64_t start_offset = 0;     ///< 0, or the honored RESUME offset
  std::uint64_t reference_length = 0; ///< body size of `from`
  std::uint64_t version_length = 0;   ///< body size of `to`
  std::uint32_t artifact_crc = 0;     ///< CRC-32C of the whole artifact
};

struct DeltaDataMsg {
  std::uint64_t offset = 0;
  Bytes data;
};

struct DeltaEndMsg {
  std::uint64_t total_size = 0;
  std::uint32_t artifact_crc = 0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct MetricsReqMsg {};

struct MetricsMsg {
  std::string text;
};

/// STATS_REQ/STATS carry the machine-readable sibling of METRICS: the
/// Prometheus-style exposition (DeltaService::stats_text()) with every
/// counter, histogram quantiles, cache gauges and stage timings — what
/// `ipdelta stats <host:port>` polls and a scraper would ingest.
struct StatsReqMsg {};

struct StatsMsg {
  std::string text;
};

using Message =
    std::variant<HelloMsg, HelloAckMsg, GetDeltaMsg, ResumeMsg, DeltaBeginMsg,
                 DeltaDataMsg, DeltaEndMsg, ErrorMsg, MetricsReqMsg,
                 MetricsMsg, StatsReqMsg, StatsMsg>;

/// Wire type of an encoded message.
FrameType message_type(const Message& message) noexcept;

/// Serialize a message into a complete frame (encode_frame applied).
/// A valid `trace` adds the frame's trace-context extension — only on
/// connections that negotiated kProtocolVersionTraced.
Bytes encode_message(const Message& message,
                     const obs::TraceContext* trace = nullptr);

/// Decode a verified frame's payload. Throws FormatError on a payload
/// that is too short/long for its type.
Message decode_message(const Frame& frame);

}  // namespace ipd
