// Length-framed wire format for the delta distribution protocol.
//
// Everything that crosses a transport is a frame:
//
//   offset size
//   0      4    magic "IPDF" (0x49 0x50 0x44 0x46)
//   4      1    frame format version (kFrameVersion, always 1)
//   5      1    frame type (FrameType)
//   6      1    flags (kFrameFlagTrace); zero on v1 sessions
//   7      1    reserved, must be zero
//   8      4    payload length, little-endian
//   12     N    payload (message body, see protocol.hpp)
//   12+N   4    CRC-32C over bytes [0, 12+N), little-endian
//
// When kFrameFlagTrace is set in the flags byte, the payload region is
// prefixed with a trace-context extension block (counted in the length
// field and covered by the CRC):
//
//   [u8 ext_len] [u8 ext_version=1] [16B trace id, hi/lo u64 LE]
//   [8B span id LE] [8B parent span id LE] [u8 flags: bit0 = sampled]
//
// ext_len counts the bytes after itself (34 for ext_version 1); a
// reader skips ext_len bytes it does not understand, so the block can
// grow without another version bump. v1 peers reject any nonzero flag
// byte, so the extension is only emitted on connections that negotiated
// protocol version >= kProtocolVersionTraced in HELLO — the frame
// format version byte itself never changes.
//
// The per-frame CRC-32C (core/checksum) is what makes the transport
// fault-tolerant: a bit flipped anywhere in flight is caught *before* the
// payload reaches the streaming applier, so a device never feeds corrupt
// bytes into the only copy of its image. A frame that fails its CRC
// poisons the whole connection (FormatError) — the peer cannot trust any
// subsequent byte boundary — and recovery is reconnect + RESUME.
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"
#include "obs/trace_context.hpp"

namespace ipd {

/// HELLO-negotiated protocol versions. kProtocolVersion is the baseline
/// every peer speaks; kProtocolVersionTraced additionally allows the
/// per-frame trace-context extension. The frame format version byte
/// (kFrameVersion) is independent and stays 1 for both.
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint8_t kProtocolVersionTraced = 2;
inline constexpr std::uint8_t kFrameVersion = 1;

/// Flags byte (offset 6). v1 peers require it to be zero.
inline constexpr std::uint8_t kFrameFlagTrace = 0x01;

inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kFrameTrailerSize = 4;
/// Trace extension block: ext_len byte + 34 bytes of ext_version 1 body.
inline constexpr std::size_t kTraceExtSize = 35;
/// Upper bound on a frame payload; a peer announcing more is corrupt or
/// hostile and is rejected before any allocation.
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< client greeting: version + chunk preference
  kHelloAck = 2,    ///< server reply: version + history extent
  kGetDelta = 3,    ///< request the upgrade artifact for (from, to)
  kResume = 4,      ///< re-request an artifact from a byte offset
  kDeltaBegin = 5,  ///< artifact metadata, precedes its data frames
  kDeltaData = 6,   ///< one chunk of artifact bytes
  kDeltaEnd = 7,    ///< artifact trailer: total size + checksum
  kError = 8,       ///< structured failure (code + text)
  kMetricsReq = 9,  ///< ask the server for its metrics snapshot
  kMetrics = 10,    ///< metrics snapshot text
  kStatsReq = 11,   ///< ask for the Prometheus-style stats exposition
  kStats = 12,      ///< stats exposition text (counters + histograms)
};

const char* frame_type_name(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;  ///< message body, trace extension already stripped
  /// Trace context carried by the frame's extension block, if any.
  std::optional<obs::TraceContext> trace;
};

/// Serialize one frame (header + payload + CRC-32C trailer). A valid
/// `trace` adds the trace-context extension — only do this on a
/// connection that negotiated kProtocolVersionTraced; v1 peers reject
/// the flag byte. Throws ValidationError if the payload (plus
/// extension) exceeds kMaxFramePayload.
Bytes encode_frame(FrameType type, ByteView payload,
                   const obs::TraceContext* trace = nullptr);

/// Incremental frame parser: feed transport bytes in any chunking, pop
/// complete verified frames. Malformed input (bad magic, version, type,
/// oversized length, CRC mismatch) throws FormatError; incomplete input
/// just waits for more bytes.
class FrameReader {
 public:
  void feed(ByteView chunk);

  /// Next complete frame, or std::nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Declare end-of-stream: throws FormatError if a partial frame is
  /// still buffered (the stream was truncated mid-frame).
  void finish() const;

  /// Bytes buffered but not yet consumed by a completed frame.
  std::size_t buffered() const noexcept { return pending_.size() - pos_; }

  /// Frames successfully decoded so far.
  std::uint64_t frames_decoded() const noexcept { return decoded_; }

 private:
  void compact();

  Bytes pending_;
  std::size_t pos_ = 0;
  std::uint64_t decoded_ = 0;
};

}  // namespace ipd
