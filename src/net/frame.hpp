// Length-framed wire format for the delta distribution protocol.
//
// Everything that crosses a transport is a frame:
//
//   offset size
//   0      4    magic "IPDF" (0x49 0x50 0x44 0x46)
//   4      1    protocol version (kProtocolVersion)
//   5      1    frame type (FrameType)
//   6      2    reserved, must be zero
//   8      4    payload length, little-endian
//   12     N    payload (message body, see protocol.hpp)
//   12+N   4    CRC-32C over bytes [0, 12+N), little-endian
//
// The per-frame CRC-32C (core/checksum) is what makes the transport
// fault-tolerant: a bit flipped anywhere in flight is caught *before* the
// payload reaches the streaming applier, so a device never feeds corrupt
// bytes into the only copy of its image. A frame that fails its CRC
// poisons the whole connection (FormatError) — the peer cannot trust any
// subsequent byte boundary — and recovery is reconnect + RESUME.
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"

namespace ipd {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kFrameTrailerSize = 4;
/// Upper bound on a frame payload; a peer announcing more is corrupt or
/// hostile and is rejected before any allocation.
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< client greeting: version + chunk preference
  kHelloAck = 2,    ///< server reply: version + history extent
  kGetDelta = 3,    ///< request the upgrade artifact for (from, to)
  kResume = 4,      ///< re-request an artifact from a byte offset
  kDeltaBegin = 5,  ///< artifact metadata, precedes its data frames
  kDeltaData = 6,   ///< one chunk of artifact bytes
  kDeltaEnd = 7,    ///< artifact trailer: total size + checksum
  kError = 8,       ///< structured failure (code + text)
  kMetricsReq = 9,  ///< ask the server for its metrics snapshot
  kMetrics = 10,    ///< metrics snapshot text
  kStatsReq = 11,   ///< ask for the Prometheus-style stats exposition
  kStats = 12,      ///< stats exposition text (counters + histograms)
};

const char* frame_type_name(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;
};

/// Serialize one frame (header + payload + CRC-32C trailer).
/// Throws ValidationError if payload exceeds kMaxFramePayload.
Bytes encode_frame(FrameType type, ByteView payload);

/// Incremental frame parser: feed transport bytes in any chunking, pop
/// complete verified frames. Malformed input (bad magic, version, type,
/// oversized length, CRC mismatch) throws FormatError; incomplete input
/// just waits for more bytes.
class FrameReader {
 public:
  void feed(ByteView chunk);

  /// Next complete frame, or std::nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Declare end-of-stream: throws FormatError if a partial frame is
  /// still buffered (the stream was truncated mid-frame).
  void finish() const;

  /// Bytes buffered but not yet consumed by a completed frame.
  std::size_t buffered() const noexcept { return pending_.size() - pos_; }

  /// Frames successfully decoded so far.
  std::uint64_t frames_decoded() const noexcept { return decoded_; }

 private:
  void compact();

  Bytes pending_;
  std::size_t pos_ = 0;
  std::uint64_t decoded_ = 0;
};

}  // namespace ipd
