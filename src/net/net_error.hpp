// Typed transport-layer error reporting.
//
// Every connection-level failure in src/net/ — socket syscalls, binds,
// timeouts, injected faults, peers that hang up, servers that shed load
// — is described by one NetError {code, detail, errno_message} and
// thrown as TransportError. Callers that used to pattern-match what()
// strings can switch on code(); the human-readable message keeps the
// same shape it always had ("tcp: connect to 127.0.0.1:80: Connection
// refused"), so logs and operators see nothing new.
#pragma once

#include <string>

#include "core/types.hpp"

namespace ipd {

/// Machine-readable classification of a transport failure.
enum class NetErrc {
  kUnknown = 0,
  kSocket,         ///< socket(2) failed
  kBadAddress,     ///< host string did not parse
  kConnect,        ///< connect(2) failed
  kBind,           ///< bind(2) failed (sandbox: "no network here")
  kListen,         ///< listen(2) failed
  kPoll,           ///< poll/epoll failed
  kAccept,         ///< accept(2) failed
  kRead,           ///< recv/read failed mid-stream
  kWrite,          ///< send/write failed mid-stream
  kTimeout,        ///< read timed out (idle connection)
  kClosedLocally,  ///< this side called close() while an op was blocked
  kPeerClosed,     ///< the peer hung up mid-conversation
  kTruncated,      ///< the stream ended before the announced payload
  kBusy,           ///< server answered ERROR{kBusy} — retry after backoff
  kShed,           ///< server answered ERROR{kShed} — overloaded, retry
  kNoTransport,    ///< the transport factory produced no connection
  kFault,          ///< injected fault (tests/benches)
};

const char* net_errc_name(NetErrc code) noexcept;

/// The one typed shape every transport failure reports.
struct NetError {
  NetErrc code = NetErrc::kUnknown;
  /// What failed, in the operation's own words ("tcp: connect to ...").
  std::string detail;
  /// strerror text when a syscall supplied errno; empty otherwise.
  std::string errno_message;

  /// "detail: errno_message" (or just detail) — the legacy what() text.
  std::string describe() const {
    return errno_message.empty() ? detail : detail + ": " + errno_message;
  }
};

/// Connection-level failure: reset, timeout, injected fault, write to a
/// closed peer, server shedding load. Distinct from FormatError (corrupt
/// bytes that *arrived*); both are retryable from the OTA client's point
/// of view. Carries the typed NetError; what() renders describe().
class TransportError : public Error {
 public:
  explicit TransportError(NetError error)
      : Error(error.describe()), error_(std::move(error)) {}
  TransportError(NetErrc code, std::string detail)
      : TransportError(NetError{code, std::move(detail), {}}) {}
  TransportError(NetErrc code, std::string detail, std::string errno_text)
      : TransportError(
            NetError{code, std::move(detail), std::move(errno_text)}) {}

  const NetError& net_error() const noexcept { return error_; }
  NetErrc code() const noexcept { return error_.code; }

 private:
  NetError error_;
};

}  // namespace ipd
