// Shared request-to-transfer planning for both server front ends.
//
// The blocking serve_session() path and the epoll reactor answer the
// same GET_DELTA/RESUME requests with the same artifact selection, the
// same resume rules and the same DELTA_BEGIN metadata. plan_transfer()
// is that decision in one place: given the service's ServeResult and the
// request parameters, it either refuses (a typed ErrorMsg, plus a note
// for the flight recorder on resume refusals) or pins the artifact and
// fills the DELTA_BEGIN header. How the artifact bytes then reach the
// socket — blocking chunk copies or zero-copy writev — is the caller's
// business.
#pragma once

#include <memory>
#include <optional>

#include "net/protocol.hpp"
#include "server/delta_service.hpp"

namespace ipd {

struct TransferPlan {
  /// Set when the request must be refused; nothing else is valid.
  std::optional<ErrorMsg> error;
  /// For refusals worth evidence (bad resumes): what to title the
  /// flight-recorder dump. Null for plain errors.
  const char* refusal_note = nullptr;
  /// The artifact to stream, pinned for the transfer's lifetime.
  std::shared_ptr<const Bytes> artifact;
  /// Fully filled, including start_offset and the container's
  /// reference/version lengths.
  DeltaBeginMsg begin;
  /// True when a RESUME was accepted (count net_resumes on this, not on
  /// completion).
  bool resume_accepted = false;
};

/// Decide how to answer one GET_DELTA/RESUME given the route the service
/// chose. `requested_to` is the release the client ultimately wants
/// (sets DELTA_BEGIN.last_hop); `offset`/`resume_crc` are meaningful
/// when `is_resume`.
TransferPlan plan_transfer(const ServeResult& result, ReleaseId requested_to,
                           std::uint64_t offset, std::uint32_t resume_crc,
                           bool is_resume);

}  // namespace ipd
