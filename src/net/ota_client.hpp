// OtaClient: the device side of the wire protocol — stream an upgrade
// over an unreliable link and survive everything the link does to you.
//
// Two consumption modes, matching the two device stories in the repo:
//
//  * update_streaming() — DELTA_DATA chunks are fed straight into a
//    StreamingInplaceApplier as they arrive, so peak RAM is one command
//    plus parser state (the paper's §1 constrained-device budget). The
//    applier's position doubles as the transfer journal: after a drop,
//    truncation, or detected bit flip the client reconnects with capped
//    exponential backoff and sends RESUME at exactly the byte it has
//    already applied — nothing is re-transferred, nothing is re-applied.
//
//  * update_device() — each hop's artifact is first downloaded into a
//    TransferJournal (resumable at byte granularity across connection
//    faults AND client restarts: hand the same journal to a fresh
//    client and it picks up at the journaled offset), then applied to
//    the FlashDevice through device/resumable_updater, whose on-flash
//    journal makes the apply itself power-failure tolerant. A simulated
//    PowerFailure propagates; call update_device() again with the same
//    arguments to resume both halves.
//
// Both modes upgrade hop by hop: the server streams one artifact per
// request (the first step of its chosen route), the client applies it
// and asks again from its new release until it runs the target.
#pragma once

#include <functional>
#include <memory>

#include "device/resumable_updater.hpp"
#include "device/stream_updater.hpp"
#include "net/transport.hpp"
#include "server/metrics.hpp"

namespace ipd {

struct OtaClientOptions {
  /// Connection attempts per hop before giving up (first try included).
  std::size_t max_attempts = 8;
  /// Exponential backoff between attempts: initial * 2^k, capped.
  int backoff_initial_ms = 5;
  int backoff_max_ms = 250;
  /// Largest DELTA_DATA payload requested in HELLO.
  std::uint32_t max_chunk = 64u << 10;
  /// Receive timeout per read; 0 = wait forever.
  int read_timeout_ms = 10'000;
  /// Register each transfer attempt with the global stall watchdog
  /// under this deadline (obs/watchdog.hpp); 0 = off.
  std::uint64_t stall_deadline_ms = 0;
};

/// What one update cost, for reports and assertions.
struct OtaReport {
  ReleaseId final_release = 0;
  std::size_t hops = 0;          ///< artifacts applied
  std::size_t retries = 0;       ///< reconnects forced by faults
  std::size_t resumes = 0;       ///< RESUME requests issued
  std::uint64_t bytes_received = 0;   ///< wire bytes read (all attempts)
  std::uint64_t artifact_bytes = 0;   ///< payload bytes applied
  std::uint64_t backoff_ns = 0;  ///< total time spent sleeping in backoff
};

/// Download-side journal for update_device(): persists the hop metadata
/// and the artifact prefix received so far. Owned by the caller — on a
/// real device this lives in NVRAM next to the apply journal — so a
/// client killed mid-transfer resumes from the journaled offset after
/// "reboot" (a fresh OtaClient handed the same journal).
struct TransferJournal {
  bool active = false;
  ReleaseId from = 0;
  ReleaseId hop_to = 0;
  bool full_image = false;
  std::uint64_t total_size = 0;
  std::uint64_t reference_length = 0;
  std::uint64_t version_length = 0;
  std::uint32_t artifact_crc = 0;
  Bytes received;  ///< artifact prefix; received.size() is the offset
};

class OtaClient {
 public:
  /// Fresh connection to the server; called once per attempt, so wrap
  /// the result in FaultyTransport here to test fault recovery.
  using TransportFactory = std::function<std::unique_ptr<Transport>()>;

  /// `metrics` (optional) receives net_retries increments so an
  /// in-process fleet shows up in the server's snapshot; pass the
  /// serving ServiceMetrics or your own block.
  explicit OtaClient(TransportFactory factory,
                     const OtaClientOptions& options = {},
                     ServiceMetrics* metrics = nullptr);

  /// Upgrade `image` (holding release `current`'s bytes) to `target`
  /// in place, streaming each hop through StreamingInplaceApplier.
  /// Throws Error when out of attempts or on a non-retryable failure;
  /// the image may then hold a partially-applied hop (the reason
  /// devices that cannot re-download pair this with update_device()).
  OtaReport update_streaming(Bytes& image, ReleaseId current,
                             ReleaseId target);

  /// Upgrade a FlashDevice holding release `current` to `target`:
  /// download each hop into `transfer` (resumable), then apply with the
  /// journaled updater (`journal` is the on-flash journal region).
  /// FlashDevice::PowerFailure propagates — call again to resume.
  /// `transfer` may be null for a throwaway in-call journal.
  OtaReport update_device(FlashDevice& device, const JournalRegion& journal,
                          ReleaseId current, ReleaseId target,
                          const ChannelModel& channel,
                          TransferJournal* transfer = nullptr);

  /// Upgrade a FlashDevice by streaming each hop's artifact straight to
  /// flash through StreamingDeviceUpdater — peak RAM is one copy window
  /// plus one journal slot, not the artifact. The on-flash apply journal
  /// is the device's only durable state: after a power cut (a propagated
  /// FlashDevice::PowerFailure) call again with the same arguments — the
  /// journal fast-forwards a completed-but-unacknowledged hop, or
  /// resumes a half-applied one with a byte-exact network RESUME at the
  /// last durable checkpoint. `current` may be stale after a reboot; the
  /// journal's hop metadata wins.
  OtaReport update_device_streaming(
      FlashDevice& device, const JournalRegion& journal, ReleaseId current,
      ReleaseId target, const StreamUpdaterOptions& apply_options = {});

  /// One-shot METRICS_REQ round trip: the server's snapshot text.
  std::string fetch_metrics();

  /// One-shot STATS_REQ round trip: the server's Prometheus-style stats
  /// exposition (`ipdelta stats <host:port>`).
  std::string fetch_stats();

 private:
  struct Session {
    std::unique_ptr<Transport> transport;
    std::unique_ptr<FramedConnection> conn;
    bool traced = false;  ///< negotiated kProtocolVersionTraced
  };

  /// Connect + HELLO. Offers kProtocolVersionTraced first; an old server
  /// answers ERROR{kProtocol}, which downgrades this client to v1 and
  /// reconnects — so tracing degrades gracefully against old peers.
  Session connect_session();
  void backoff(std::size_t attempt, OtaReport& report);
  /// Stream one hop into `image`, resuming across faults; returns the
  /// release the image holds afterwards.
  ReleaseId stream_hop(Bytes& image, ReleaseId current, ReleaseId target,
                       OtaReport& report);
  /// Download one hop's artifact into `journal`, resuming at its
  /// current offset; returns when the artifact is complete + verified.
  void download_hop(TransferJournal& journal, ReleaseId current,
                    ReleaseId target, OtaReport& report);
  /// Stream one hop straight to flash; `probe` carries reboot-recovery
  /// state when the apply journal holds an in-flight record. Returns the
  /// release the device holds afterwards.
  ReleaseId stream_device_hop(FlashDevice& device,
                              const JournalRegion& journal,
                              ReleaseId current, ReleaseId target,
                              std::optional<StreamApplyProbe> probe,
                              const StreamUpdaterOptions& apply_options,
                              OtaReport& report);

  TransportFactory factory_;
  OtaClientOptions options_;
  ServiceMetrics* metrics_;
  /// HELLO version to offer next; drops to kProtocolVersion after an
  /// old server refuses kProtocolVersionTraced (sticky per client).
  std::uint32_t offer_version_ = kProtocolVersionTraced;
};

}  // namespace ipd
