// Deterministic in-memory transport pair for tests.
//
// make_loopback_pair() returns two connected endpoints: bytes written to
// one are readable from the other, FIFO, with no sockets, no timing, and
// no partial-delivery surprises beyond what the reader asks for. close()
// on either end wakes blocked readers on both; a reader drains whatever
// was written before the close, then sees EOF — exactly the TCP
// semantics the protocol code must handle, minus the nondeterminism.
//
// set_read_timeout() is honoured like TCP's SO_RCVTIMEO: an expired wait
// throws TransportError. Without it, a fault-injected link whose frame
// length prefix took a bit flip leaves BOTH peers blocked forever — each
// waiting for bytes the other will never send — because the length field
// sits outside the payload CRC.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <utility>

#include "core/sync.hpp"
#include "net/transport.hpp"

namespace ipd {

/// Create a connected endpoint pair. Both endpoints share state; either
/// may outlive the other.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

namespace detail {

/// Shared state of one loopback connection: two directed byte queues.
struct LoopbackCore {
  Mutex mutex{"LoopbackCore"};
  ConditionVariable cv;
  std::deque<std::uint8_t> a_to_b GUARDED_BY(mutex);
  std::deque<std::uint8_t> b_to_a GUARDED_BY(mutex);
  bool closed GUARDED_BY(mutex) = false;  ///< either side hung up
};

class LoopbackEndpoint final : public Transport {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackCore> core, bool is_a)
      : core_(std::move(core)), is_a_(is_a) {}
  ~LoopbackEndpoint() override { close(); }

  std::size_t read_some(MutByteView out) override;
  void write_all(ByteView data) override;
  void close() noexcept override;
  void set_read_timeout(int ms) override {
    timeout_ms_.store(ms, std::memory_order_relaxed);
  }
  std::string peer() const override { return "loopback"; }

 private:
  std::shared_ptr<LoopbackCore> core_;
  bool is_a_;
  std::atomic<int> timeout_ms_{0};  ///< 0 = wait forever
};

}  // namespace detail

}  // namespace ipd
