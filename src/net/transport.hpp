// Byte-stream transport abstraction the protocol runs over.
//
// Three implementations ship: real POSIX TCP (net/tcp_transport.hpp), a
// deterministic in-memory loopback for tests (net/loopback_transport.hpp),
// and a fault-injecting decorator (net/faulty_transport.hpp). The server
// and OTA client are written against this interface only, so every
// protocol path can be exercised without a socket — and every fault the
// decorator can invent is, by construction, survivable by the same code
// that runs in production.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/net_error.hpp"
#include "net/protocol.hpp"

namespace ipd {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Block until at least one byte is available; return the number of
  /// bytes placed in `out`. 0 means clean end-of-stream. Throws
  /// TransportError on connection failure or read timeout.
  virtual std::size_t read_some(MutByteView out) = 0;

  /// Write all of `data` (handling partial writes). Throws TransportError.
  virtual void write_all(ByteView data) = 0;

  /// Shut the connection down; a blocked read_some on another thread
  /// returns/throws promptly. Idempotent and thread-safe.
  virtual void close() noexcept = 0;

  /// Bound how long read_some blocks; 0 disables. Default: unsupported
  /// no-op (the loopback pair is never idle in tests that use it).
  virtual void set_read_timeout(int /*ms*/) {}

  /// Peer description for diagnostics ("127.0.0.1:4242", "loopback", ...).
  virtual std::string peer() const = 0;

  /// OS descriptor for event-driven I/O (the epoll reactor), or -1 when
  /// the transport has none (loopback, decorators). A transport that
  /// returns a real fd must also support set_nonblocking().
  virtual int native_handle() const noexcept { return -1; }

  /// Switch the descriptor between blocking and non-blocking mode.
  /// Default: unsupported no-op (blocking-only transports).
  virtual void set_nonblocking(bool /*enabled*/) {}
};

/// One protocol conversation over a transport: pumps frames in and out
/// and keeps the byte/frame accounting the server metrics report.
class FramedConnection {
 public:
  explicit FramedConnection(Transport& transport) : transport_(transport) {}

  /// Next decoded message, or std::nullopt on clean end-of-stream.
  /// Throws FormatError on a corrupt frame, TransportError on failure.
  /// Updates inbound_trace() from the frame's trace extension (cleared
  /// when the frame carries none).
  std::optional<Message> receive();

  /// Encode and write one message, attaching the outbound trace context
  /// (if set) to the frame; returns wire bytes written.
  std::size_t send(const Message& message);

  /// Write an already-encoded frame (encode_message output); lets a
  /// caller know the wire size before any byte hits the transport. The
  /// outbound trace is NOT attached — encode with it explicitly.
  std::size_t send_encoded(ByteView wire);

  /// Trace context attached to every subsequent send(). Only set this
  /// after negotiating kProtocolVersionTraced: v1 peers reject the
  /// extension's flag byte. An invalid context clears it.
  void set_outbound_trace(const obs::TraceContext& ctx) noexcept {
    outbound_trace_ = ctx;
  }
  const obs::TraceContext& outbound_trace() const noexcept {
    return outbound_trace_;
  }

  /// Trace context of the last received frame (invalid when it had
  /// none).
  const obs::TraceContext& inbound_trace() const noexcept {
    return inbound_trace_;
  }

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t bytes_received() const noexcept { return bytes_received_; }
  std::uint64_t frames_sent() const noexcept { return frames_sent_; }

  Transport& transport() noexcept { return transport_; }

 private:
  Transport& transport_;
  FrameReader reader_;
  obs::TraceContext outbound_trace_;
  obs::TraceContext inbound_trace_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace ipd
