#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/io.hpp"

namespace ipd {

namespace {

[[noreturn]] void raise_errno(NetErrc code, const std::string& what) {
  throw TransportError(code, what, errno_message(errno));
}

std::string describe(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno(NetErrc::kSocket, "tcp: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError(NetErrc::kBadAddress,
                         "tcp: bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    raise_errno(NetErrc::kConnect, "tcp: connect to " + describe(addr));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpTransport>(fd, describe(addr));
}

TcpTransport::TcpTransport(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

TcpTransport::~TcpTransport() {
  close();
  ::close(fd_);
}

std::size_t TcpTransport::read_some(MutByteView out) {
  if (out.empty()) return 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly shutdown
    if (errno == EINTR) continue;
    if (closed_.load(std::memory_order_relaxed)) {
      throw TransportError(NetErrc::kClosedLocally,
                           "tcp: connection closed locally");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TransportError(NetErrc::kTimeout,
                           "tcp: read timeout (idle connection)");
    }
    raise_errno(NetErrc::kRead, "tcp: recv from " + peer_);
  }
}

void TcpTransport::write_all(ByteView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process kill.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (closed_.load(std::memory_order_relaxed)) {
        throw TransportError(NetErrc::kClosedLocally,
                             "tcp: connection closed locally");
      }
      raise_errno(NetErrc::kWrite, "tcp: send to " + peer_);
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpTransport::close() noexcept {
  if (!closed_.exchange(true, std::memory_order_relaxed)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpTransport::set_read_timeout(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void TcpTransport::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) raise_errno(NetErrc::kSocket, "tcp: fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) != 0) {
    raise_errno(NetErrc::kSocket, "tcp: fcntl(F_SETFL)");
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno(NetErrc::kSocket, "tcp: listener socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    raise_errno(NetErrc::kBind,
                "tcp: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    raise_errno(NetErrc::kListen, "tcp: listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  close();
  ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpListener::accept() {
  while (!closed_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno(NetErrc::kPoll, "tcp: poll");
    }
    if (ready == 0) continue;  // poll timeout: re-check the stop flag
    if (std::unique_ptr<TcpTransport> conn = try_accept()) return conn;
  }
  return nullptr;
}

std::unique_ptr<TcpTransport> TcpListener::try_accept() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return nullptr;
      if (closed_.load(std::memory_order_relaxed)) return nullptr;
      raise_errno(NetErrc::kAccept, "tcp: accept");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<TcpTransport>(fd, describe(addr));
  }
}

void TcpListener::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) raise_errno(NetErrc::kSocket, "tcp: fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) != 0) {
    raise_errno(NetErrc::kSocket, "tcp: fcntl(F_SETFL)");
  }
}

void TcpListener::close() noexcept {
  closed_.store(true, std::memory_order_relaxed);
}

}  // namespace ipd
