#include "net/delta_server.hpp"

#include <algorithm>
#include <variant>

#include "core/checksum.hpp"
#include "delta/codec.hpp"
#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"

namespace ipd {

DeltaServer::DeltaServer(DeltaService& service,
                         const NetServerOptions& options)
    : service_(service), options_(options) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 4096;
  options_.chunk_bytes = std::min(options_.chunk_bytes, kMaxFramePayload / 2);
}

DeltaServer::~DeltaServer() { stop(); }

void DeltaServer::start() {
  {
    MutexLock lock(sessions_mutex_);
    if (started_) throw Error("DeltaServer: already started");
    started_ = true;
  }
  try {
    listener_ = std::make_unique<TcpListener>(options_.port);
    pool_ = std::make_unique<ThreadPool>(options_.max_sessions);
    {
      // stop() leaves stopping_ set; a restarted server must accept again
      // instead of answering every connection with ERROR{kBusy}.
      MutexLock lock(sessions_mutex_);
      stopping_ = false;
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
  } catch (...) {
    // A failed bind must not wedge the server in "already started".
    pool_.reset();
    listener_.reset();
    MutexLock lock(sessions_mutex_);
    started_ = false;
    throw;
  }
}

void DeltaServer::stop() {
  {
    MutexLock lock(sessions_mutex_);
    stopping_ = true;
  }
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(sessions_mutex_);
    for (Transport* session : sessions_) session->close();
  }
  pool_.reset();  // drains: every session sees its closed transport and exits
  listener_.reset();
  MutexLock lock(sessions_mutex_);
  started_ = false;
}

std::uint16_t DeltaServer::port() const {
  if (!listener_) throw Error("DeltaServer: not started");
  return listener_->port();
}

std::size_t DeltaServer::active_sessions() const {
  MutexLock lock(sessions_mutex_);
  return sessions_.size();
}

std::size_t DeltaServer::send_counted(FramedConnection& conn,
                                      const Message& message) {
  // Count before the write: a client thread that has already consumed
  // this frame must observe the counters it implies (tests and
  // dashboards read the snapshot the instant a transfer completes).
  const obs::TraceContext& trace = conn.outbound_trace();
  const Bytes wire =
      encode_message(message, trace.valid() ? &trace : nullptr);
  ServiceMetrics& m = service_.metrics();
  m.net_bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);
  m.net_frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (const auto* err = std::get_if<ErrorMsg>(&message)) {
    m.net_errors.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kNetError,
                              static_cast<std::uint64_t>(err->code), 0,
                              err->message);
  }
  return conn.send_encoded(wire);
}

void DeltaServer::accept_loop() {
  while (std::unique_ptr<TcpTransport> accepted = listener_->accept()) {
    std::unique_ptr<Transport> transport = std::move(accepted);
    bool full = false;
    {
      MutexLock lock(sessions_mutex_);
      full = stopping_ || sessions_.size() >= options_.max_sessions;
      if (!full) sessions_.insert(transport.get());
    }
    if (full) {
      service_.metrics().net_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::global_events().push(obs::EventType::kConnRejected,
                                active_sessions(), options_.max_sessions);
      try {
        FramedConnection conn(*transport);
        send_counted(conn, ErrorMsg{ErrorCode::kBusy,
                                    "connection limit reached, retry later"});
      } catch (const Error&) {
        // best effort — the client may already be gone
      }
      transport->close();
      continue;
    }
    pool_->submit([this, session = std::move(transport)]() mutable {
      serve_session(*session);
      MutexLock lock(sessions_mutex_);
      sessions_.erase(session.get());
    });
  }
}

void DeltaServer::serve_session(Transport& transport) {
  if (options_.idle_timeout_ms > 0) {
    transport.set_read_timeout(options_.idle_timeout_ms);
  }
  ServiceMetrics& m = service_.metrics();
  m.net_sessions.fetch_add(1, std::memory_order_relaxed);
  FramedConnection conn(transport);
  std::size_t chunk = options_.chunk_bytes;
  // Session flight recorder: records spans/events on this thread whether
  // or not global tracing is on, and is dumped on any failure path so a
  // rejected resume or corrupt stream leaves evidence keyed by trace id.
  obs::FlightRecorder flight("server:" + transport.peer());
  const obs::FlightScope flight_scope(flight);
  bool traced = false;  // negotiated kProtocolVersionTraced in HELLO
  try {
    for (;;) {
      const std::optional<Message> message = conn.receive();
      if (!message) break;  // peer said goodbye cleanly
      // Adopt the frame's trace context for everything this request
      // does on this thread: serve/build spans become children of the
      // client's request span, and replies echo the context back.
      const obs::TraceContext inbound = conn.inbound_trace();
      const obs::TraceContext session_ctx =
          inbound.valid() ? obs::child_of(inbound) : obs::TraceContext{};
      const obs::TraceScope trace_scope(session_ctx);
      if (session_ctx.valid()) {
        flight.set_context(session_ctx);
        if (traced) conn.set_outbound_trace(session_ctx);
      } else {
        conn.set_outbound_trace(obs::TraceContext{});
      }
      if (const auto* hello = std::get_if<HelloMsg>(&*message)) {
        if (hello->protocol_version != kProtocolVersion &&
            hello->protocol_version != kProtocolVersionTraced) {
          send_counted(conn,
                       ErrorMsg{ErrorCode::kProtocol,
                                "unsupported protocol version " +
                                    std::to_string(hello->protocol_version)});
          break;
        }
        traced = hello->protocol_version >= kProtocolVersionTraced;
        chunk = std::min<std::size_t>(
            options_.chunk_bytes,
            std::max<std::uint32_t>(hello->max_chunk, 512));
        HelloAckMsg ack;
        ack.protocol_version = hello->protocol_version;
        ack.release_count =
            static_cast<std::uint32_t>(service_.store().release_count());
        ack.latest = ack.release_count == 0 ? 0 : service_.store().latest();
        ack.chunk = static_cast<std::uint32_t>(chunk);
        send_counted(conn, ack);
      } else if (const auto* get = std::get_if<GetDeltaMsg>(&*message)) {
        handle_transfer(conn, get->from, get->to, 0, 0, false, chunk);
      } else if (const auto* resume = std::get_if<ResumeMsg>(&*message)) {
        handle_transfer(conn, resume->from, resume->to, resume->offset,
                        resume->artifact_crc, true, chunk);
      } else if (std::get_if<MetricsReqMsg>(&*message)) {
        send_counted(conn, MetricsMsg{service_.metrics_text()});
      } else if (std::get_if<StatsReqMsg>(&*message)) {
        send_counted(conn, StatsMsg{service_.stats_text()});
      } else {
        send_counted(conn, ErrorMsg{ErrorCode::kProtocol,
                                    "unexpected message type"});
      }
    }
  } catch (const TransportError&) {
    // connection died or idled out — nothing to clean up, artifacts are
    // immutable and the client resumes on its next connection
  } catch (const FormatError& e) {
    // corrupt inbound frame: the stream cannot be trusted past this point
    flight.note(e.what());
    obs::dump_flight(flight, "corrupt inbound frame");
  }
  transport.close();
}

void DeltaServer::handle_transfer(FramedConnection& conn, ReleaseId from,
                                  ReleaseId to, std::uint64_t offset,
                                  std::uint32_t resume_crc, bool is_resume,
                                  std::size_t chunk) {
  ServeResult result;
  try {
    result = service_.serve(from, to);
  } catch (const ValidationError& e) {
    send_counted(conn, ErrorMsg{ErrorCode::kBadRequest, e.what()});
    return;
  } catch (const std::exception& e) {
    send_counted(conn, ErrorMsg{ErrorCode::kInternal, e.what()});
    return;
  }

  // One artifact per request: the first step of the chosen route. On
  // RESUME the client repeats its original (from, to) request — so
  // serve() re-derives the same route and last_hop stays truthful — and
  // echoes the artifact CRC it was receiving; serve() is deterministic
  // so the rebuilt artifact is byte-identical — but if route selection
  // shifted (e.g. publisher reconfigured), refuse rather than splice
  // two different artifacts.
  const ServedStep* step = &result.steps.front();
  std::uint32_t artifact_crc = crc32c(*step->bytes);
  if (is_resume && artifact_crc != resume_crc) {
    const auto match =
        std::find_if(result.steps.begin(), result.steps.end(),
                     [&](const ServedStep& s) {
                       return crc32c(*s.bytes) == resume_crc;
                     });
    if (match == result.steps.end()) {
      send_counted(conn, ErrorMsg{ErrorCode::kBadResume,
                                  "artifact changed since the transfer "
                                  "started; restart from GET_DELTA"});
      if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
        obs::dump_flight(*fr, "resume refused: artifact changed");
      }
      return;
    }
    step = &*match;
    artifact_crc = resume_crc;
  }
  const Bytes& artifact = *step->bytes;
  if (offset > artifact.size()) {
    send_counted(conn, ErrorMsg{ErrorCode::kBadResume,
                                "resume offset beyond artifact end"});
    if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
      obs::dump_flight(*fr, "resume refused: offset beyond artifact end");
    }
    return;
  }

  if (is_resume) {
    // Count on acceptance, not completion: observers (tests, dashboards)
    // that saw the resumed transfer finish must also see the counter.
    service_.metrics().net_resumes.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kNetResume, offset,
                              artifact.size());
  }
  const std::uint64_t transfer_start = obs::now_ns();
  obs::Span span(obs::Stage::kNetTransfer, artifact.size() - offset);
  obs::WatchdogGuard watchdog("server transfer", obs::current_trace(),
                              options_.stall_deadline_ms * 1'000'000);
  std::uint64_t frames_this_transfer = 0;
  DeltaBeginMsg begin;
  begin.from = step->from;
  begin.to = step->to;
  begin.full_image = step->full_image ? 1 : 0;
  begin.last_hop = step->to == to ? 1 : 0;
  begin.total_size = artifact.size();
  begin.start_offset = offset;
  begin.artifact_crc = artifact_crc;
  if (step->full_image) {
    begin.reference_length = 0;
    begin.version_length = artifact.size();
  } else {
    // The container header is self-describing; lift the buffer-sizing
    // fields a streaming device needs before its first payload byte.
    const auto header = try_parse_header(artifact);
    if (!header) {
      send_counted(conn, ErrorMsg{ErrorCode::kInternal,
                                  "artifact container header unreadable"});
      return;
    }
    begin.reference_length = header->first.reference_length;
    begin.version_length = header->first.version_length;
  }
  send_counted(conn, begin);
  ++frames_this_transfer;

  for (std::uint64_t pos = offset; pos < artifact.size();) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk, artifact.size() - pos));
    DeltaDataMsg data;
    data.offset = pos;
    data.data.assign(artifact.begin() + static_cast<std::ptrdiff_t>(pos),
                     artifact.begin() + static_cast<std::ptrdiff_t>(pos + n));
    send_counted(conn, data);
    ++frames_this_transfer;
    pos += n;
    watchdog.progress(pos);
  }
  send_counted(conn, DeltaEndMsg{artifact.size(), artifact_crc});
  ++frames_this_transfer;
  service_.histograms().transfer_ns.record(obs::now_ns() - transfer_start);
  service_.histograms().transfer_frames.record(frames_this_transfer);
}

}  // namespace ipd
