#include "net/delta_server.hpp"

#include <algorithm>
#include <variant>

#include "core/checksum.hpp"
#include "net/transfer_plan.hpp"
#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"

namespace ipd {

DeltaServer::DeltaServer(DeltaService& service, const ServerConfig& config)
    : service_(service), config_(config.validated()) {}

DeltaServer::~DeltaServer() { stop(); }

void DeltaServer::start() {
  {
    MutexLock lock(state_mutex_);
    if (started_) throw Error("DeltaServer: already started");
    started_ = true;
  }
  try {
    listener_ = std::make_unique<TcpListener>(config_.port);
    reactor_ = std::make_unique<Reactor>(service_, config_, *listener_);
    reactor_->start();
  } catch (...) {
    // A failed bind must not wedge the server in "already started".
    reactor_.reset();
    listener_.reset();
    MutexLock lock(state_mutex_);
    started_ = false;
    throw;
  }
}

void DeltaServer::stop() {
  if (reactor_) reactor_->stop();
  reactor_.reset();
  listener_.reset();
  MutexLock lock(state_mutex_);
  started_ = false;
}

std::uint16_t DeltaServer::port() const {
  if (!listener_) throw Error("DeltaServer: not started");
  return listener_->port();
}

std::size_t DeltaServer::active_sessions() const {
  return reactor_ ? reactor_->active_connections() : 0;
}

std::size_t DeltaServer::send_counted(FramedConnection& conn,
                                      const Message& message) {
  // Count before the write: a client thread that has already consumed
  // this frame must observe the counters it implies (tests and
  // dashboards read the snapshot the instant a transfer completes).
  const obs::TraceContext& trace = conn.outbound_trace();
  const Bytes wire =
      encode_message(message, trace.valid() ? &trace : nullptr);
  ServiceMetrics& m = service_.metrics();
  m.net_bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);
  m.net_frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (const auto* err = std::get_if<ErrorMsg>(&message)) {
    m.net_errors.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kNetError,
                              static_cast<std::uint64_t>(err->code), 0,
                              err->message);
  }
  return conn.send_encoded(wire);
}

void DeltaServer::serve_session(Transport& transport) {
  if (config_.idle_timeout_ms > 0) {
    transport.set_read_timeout(config_.idle_timeout_ms);
  }
  ServiceMetrics& m = service_.metrics();
  m.net_sessions.fetch_add(1, std::memory_order_relaxed);
  FramedConnection conn(transport);
  std::size_t chunk = config_.chunk_bytes;
  // Session flight recorder: records spans/events on this thread whether
  // or not global tracing is on, and is dumped on any failure path so a
  // rejected resume or corrupt stream leaves evidence keyed by trace id.
  obs::FlightRecorder flight("server:" + transport.peer());
  const obs::FlightScope flight_scope(flight);
  bool traced = false;  // negotiated kProtocolVersionTraced in HELLO
  try {
    for (;;) {
      const std::optional<Message> message = conn.receive();
      if (!message) break;  // peer said goodbye cleanly
      // Adopt the frame's trace context for everything this request
      // does on this thread: serve/build spans become children of the
      // client's request span, and replies echo the context back.
      const obs::TraceContext inbound = conn.inbound_trace();
      const obs::TraceContext session_ctx =
          inbound.valid() ? obs::child_of(inbound) : obs::TraceContext{};
      const obs::TraceScope trace_scope(session_ctx);
      if (session_ctx.valid()) {
        flight.set_context(session_ctx);
        if (traced) conn.set_outbound_trace(session_ctx);
      } else {
        conn.set_outbound_trace(obs::TraceContext{});
      }
      if (const auto* hello = std::get_if<HelloMsg>(&*message)) {
        if (hello->protocol_version != kProtocolVersion &&
            hello->protocol_version != kProtocolVersionTraced) {
          send_counted(conn,
                       ErrorMsg{ErrorCode::kProtocol,
                                "unsupported protocol version " +
                                    std::to_string(hello->protocol_version)});
          break;
        }
        traced = hello->protocol_version >= kProtocolVersionTraced;
        chunk = std::min<std::size_t>(
            config_.chunk_bytes,
            std::max<std::uint32_t>(hello->max_chunk, 512));
        HelloAckMsg ack;
        ack.protocol_version = hello->protocol_version;
        ack.release_count =
            static_cast<std::uint32_t>(service_.store().release_count());
        ack.latest = ack.release_count == 0 ? 0 : service_.store().latest();
        ack.chunk = static_cast<std::uint32_t>(chunk);
        send_counted(conn, ack);
      } else if (const auto* get = std::get_if<GetDeltaMsg>(&*message)) {
        handle_transfer(conn, get->from, get->to, 0, 0, false, chunk);
      } else if (const auto* resume = std::get_if<ResumeMsg>(&*message)) {
        handle_transfer(conn, resume->from, resume->to, resume->offset,
                        resume->artifact_crc, true, chunk);
      } else if (std::get_if<MetricsReqMsg>(&*message)) {
        send_counted(conn, MetricsMsg{service_.metrics_text()});
      } else if (std::get_if<StatsReqMsg>(&*message)) {
        send_counted(conn, StatsMsg{service_.stats_text()});
      } else {
        send_counted(conn, ErrorMsg{ErrorCode::kProtocol,
                                    "unexpected message type"});
      }
    }
  } catch (const TransportError&) {
    // connection died or idled out — nothing to clean up, artifacts are
    // immutable and the client resumes on its next connection
  } catch (const FormatError& e) {
    // corrupt inbound frame: the stream cannot be trusted past this point
    flight.note(e.what());
    obs::dump_flight(flight, "corrupt inbound frame");
  }
  transport.close();
}

void DeltaServer::handle_transfer(FramedConnection& conn, ReleaseId from,
                                  ReleaseId to, std::uint64_t offset,
                                  std::uint32_t resume_crc, bool is_resume,
                                  std::size_t chunk) {
  ServeResult result;
  try {
    result = service_.serve(from, to);
  } catch (const ValidationError& e) {
    send_counted(conn, ErrorMsg{ErrorCode::kBadRequest, e.what()});
    return;
  } catch (const std::exception& e) {
    send_counted(conn, ErrorMsg{ErrorCode::kInternal, e.what()});
    return;
  }

  const TransferPlan plan =
      plan_transfer(result, to, offset, resume_crc, is_resume);
  if (plan.error) {
    send_counted(conn, *plan.error);
    if (plan.refusal_note != nullptr) {
      if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
        obs::dump_flight(*fr, plan.refusal_note);
      }
    }
    return;
  }
  const Bytes& artifact = *plan.artifact;
  if (plan.resume_accepted) {
    // Count on acceptance, not completion: observers (tests, dashboards)
    // that saw the resumed transfer finish must also see the counter.
    service_.metrics().net_resumes.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kNetResume, offset,
                              artifact.size());
  }
  const std::uint64_t transfer_start = obs::now_ns();
  obs::Span span(obs::Stage::kNetTransfer, artifact.size() - offset);
  obs::WatchdogGuard watchdog("server transfer", obs::current_trace(),
                              config_.stall_deadline_ms * 1'000'000);
  std::uint64_t frames_this_transfer = 0;
  send_counted(conn, plan.begin);
  ++frames_this_transfer;

  for (std::uint64_t pos = offset; pos < artifact.size();) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk, artifact.size() - pos));
    DeltaDataMsg data;
    data.offset = pos;
    data.data.assign(artifact.begin() + static_cast<std::ptrdiff_t>(pos),
                     artifact.begin() + static_cast<std::ptrdiff_t>(pos + n));
    send_counted(conn, data);
    ++frames_this_transfer;
    pos += n;
    watchdog.progress(pos);
  }
  send_counted(conn,
               DeltaEndMsg{artifact.size(), plan.begin.artifact_crc});
  ++frames_this_transfer;
  service_.histograms().transfer_ns.record(obs::now_ns() - transfer_start);
  service_.histograms().transfer_frames.record(frames_this_transfer);
}

}  // namespace ipd
