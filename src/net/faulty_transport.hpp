// Fault-injecting transport decorator: the chaos half of the test rig.
//
// Wraps any Transport and, with seeded deterministic randomness, injects
// the failures a slow radio link actually produces:
//
//   * drops       — the connection dies before an operation completes;
//   * truncations — a write delivers only a prefix, then the link dies
//                   (the peer sees a torn final frame);
//   * bit flips   — one bit of in-flight data is inverted (caught by the
//                   per-frame CRC-32C on the receiving side);
//   * delays      — transfer time modelled through the existing
//                   device/channel ChannelModel, scaled so tests finish.
//
// A faulted connection stays dead: further operations throw
// TransportError, and the inner transport is closed so the peer observes
// EOF — exactly what the OTA client's retry/resume loop must absorb.
#pragma once

#include <atomic>
#include <memory>

#include "core/rng.hpp"
#include "core/sync.hpp"
#include "device/channel.hpp"
#include "net/transport.hpp"

namespace ipd {

struct FaultOptions {
  std::uint64_t seed = 1;
  /// Per-operation probability the connection dies cleanly (read: EOF
  /// path on the peer; this side: TransportError).
  double drop_rate = 0;
  /// Per-write probability only a prefix is delivered before death.
  double truncate_rate = 0;
  /// Per-operation probability one random bit of the data is flipped.
  double flip_rate = 0;
  /// Operations (reads + writes) performed fault-free before injection
  /// starts; lets the handshake through so tests exercise mid-transfer
  /// faults rather than pure connect storms.
  std::size_t grace_ops = 4;
  /// Deterministic kill switch (0 = off): after this many bytes total
  /// (reads + writes) the link dies, delivering only the in-budget
  /// prefix of the crossing operation. Unlike the probabilistic rates
  /// this does not depend on how TCP chunks the stream, so "die N bytes
  /// into the transfer" tests are reproducible.
  std::uint64_t kill_after_bytes = 0;
  /// When set, every operation sleeps channel->transfer_seconds(bytes) *
  /// time_scale — the bench/e2e knob for "28.8k modem, but fast".
  const ChannelModel* channel = nullptr;
  double time_scale = 0;
};

/// Counters shared by every FaultyTransport created from the same test
/// scenario, so assertions can demand "faults actually happened".
struct FaultStats {
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> truncations{0};
  std::atomic<std::uint64_t> flips{0};

  std::uint64_t total() const noexcept {
    return drops.load() + truncations.load() + flips.load();
  }
};

class FaultyTransport final : public Transport {
 public:
  /// `stats` may be null; it must outlive the transport otherwise.
  FaultyTransport(std::unique_ptr<Transport> inner,
                  const FaultOptions& options, FaultStats* stats = nullptr);

  std::size_t read_some(MutByteView out) override;
  void write_all(ByteView data) override;
  void close() noexcept override;
  void set_read_timeout(int ms) override;
  std::string peer() const override;

 private:
  void throttle(std::size_t bytes);
  [[noreturn]] void die(const char* what);

  std::unique_ptr<Transport> inner_;
  FaultOptions options_;
  FaultStats* stats_;
  Mutex mutex_{"FaultyTransport"};  // close() may race a read
  Rng rng_ GUARDED_BY(mutex_);
  std::size_t ops_ GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_ GUARDED_BY(mutex_) = 0;
  std::atomic<bool> dead_{false};
};

}  // namespace ipd
