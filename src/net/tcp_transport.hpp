// Real POSIX TCP implementation of the Transport interface.
//
// Blocking sockets, one per session. close() uses shutdown(2) rather
// than close(2) so a read blocked on another thread wakes immediately
// without an fd-reuse race; the descriptor is released only by the
// destructor. Idle timeouts map to SO_RCVTIMEO. The listener's accept
// loop polls with a short timeout so stop requests take effect promptly
// and deterministically on every platform.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/transport.hpp"

namespace ipd {

class TcpTransport final : public Transport {
 public:
  /// Connect to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  /// Throws TransportError on failure.
  static std::unique_ptr<TcpTransport> connect(const std::string& host,
                                               std::uint16_t port);

  /// Adopt an already-connected descriptor (listener side).
  TcpTransport(int fd, std::string peer);
  ~TcpTransport() override;

  std::size_t read_some(MutByteView out) override;
  void write_all(ByteView data) override;
  void close() noexcept override;
  void set_read_timeout(int ms) override;
  std::string peer() const override { return peer_; }
  int native_handle() const noexcept override { return fd_; }
  void set_nonblocking(bool enabled) override;

 private:
  int fd_;
  std::atomic<bool> closed_{false};
  std::string peer_;
};

class TcpListener {
 public:
  /// Bind and listen on 127.0.0.1:`port`; 0 picks an ephemeral port
  /// (read it back with port()). Throws TransportError on failure —
  /// callers in sandboxed environments should treat that as "no network
  /// here" and skip, not crash.
  explicit TcpListener(std::uint16_t port, int backlog = 64);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Block (in ~100 ms polls) for the next connection; nullptr once
  /// close() has been called. Throws TransportError on accept failure.
  std::unique_ptr<TcpTransport> accept();

  /// Accept without blocking: the next queued connection, or nullptr
  /// when none is pending (or the listener is closed). Pair with
  /// set_nonblocking(true) and an epoll watch on native_handle().
  std::unique_ptr<TcpTransport> try_accept();

  /// Listening descriptor, for event-driven accept loops.
  int native_handle() const noexcept { return fd_; }

  /// Switch the listening socket between blocking and non-blocking.
  void set_nonblocking(bool enabled);

  /// Stop accepting; a blocked accept() returns nullptr within one poll.
  void close() noexcept;

 private:
  int fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace ipd
