#include "net/protocol.hpp"

#include <cstring>

namespace ipd {

namespace {

// Fixed-width little-endian field helpers. A Cursor throws FormatError on
// underrun so every decoder gets bounds checking for free; decoders also
// call done() so trailing garbage is rejected (a frame passed its CRC, so
// any length mismatch is a protocol bug, not line noise).
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  explicit Cursor(ByteView payload)
      : p(payload.data()), end(payload.data() + payload.size()) {}

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw FormatError("message payload truncated");
    }
  }
  std::uint8_t u8() {
    need(1);
    return *p++;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                      (static_cast<std::uint32_t>(p[1]) << 8) |
                      (static_cast<std::uint32_t>(p[2]) << 16) |
                      (static_cast<std::uint32_t>(p[3]) << 24);
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  Bytes rest() {
    Bytes out(p, end);
    p = end;
    return out;
  }
  std::string rest_string() {
    std::string out(reinterpret_cast<const char*>(p),
                    static_cast<std::size_t>(end - p));
    p = end;
    return out;
  }
  void done() const {
    if (p != end) throw FormatError("message payload has trailing bytes");
  }
};

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

Bytes payload_of(const HelloMsg& m) {
  Bytes out;
  put_u32(out, m.protocol_version);
  put_u32(out, m.max_chunk);
  return out;
}

Bytes payload_of(const HelloAckMsg& m) {
  Bytes out;
  put_u32(out, m.protocol_version);
  put_u32(out, m.release_count);
  put_u32(out, m.latest);
  put_u32(out, m.chunk);
  return out;
}

Bytes payload_of(const GetDeltaMsg& m) {
  Bytes out;
  put_u32(out, m.from);
  put_u32(out, m.to);
  return out;
}

Bytes payload_of(const ResumeMsg& m) {
  Bytes out;
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u64(out, m.offset);
  put_u32(out, m.artifact_crc);
  return out;
}

Bytes payload_of(const DeltaBeginMsg& m) {
  Bytes out;
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u8(out, m.full_image);
  put_u8(out, m.last_hop);
  put_u64(out, m.total_size);
  put_u64(out, m.start_offset);
  put_u64(out, m.reference_length);
  put_u64(out, m.version_length);
  put_u32(out, m.artifact_crc);
  return out;
}

Bytes payload_of(const DeltaDataMsg& m) {
  Bytes out;
  put_u64(out, m.offset);
  out.insert(out.end(), m.data.begin(), m.data.end());
  return out;
}

Bytes payload_of(const DeltaEndMsg& m) {
  Bytes out;
  put_u64(out, m.total_size);
  put_u32(out, m.artifact_crc);
  return out;
}

Bytes payload_of(const ErrorMsg& m) {
  Bytes out;
  put_u32(out, static_cast<std::uint32_t>(m.code));
  out.insert(out.end(), m.message.begin(), m.message.end());
  return out;
}

Bytes payload_of(const MetricsReqMsg&) { return {}; }

Bytes payload_of(const MetricsMsg& m) {
  return Bytes(m.text.begin(), m.text.end());
}

Bytes payload_of(const StatsReqMsg&) { return {}; }

Bytes payload_of(const StatsMsg& m) {
  return Bytes(m.text.begin(), m.text.end());
}

}  // namespace

FrameType message_type(const Message& message) noexcept {
  struct Visitor {
    FrameType operator()(const HelloMsg&) { return FrameType::kHello; }
    FrameType operator()(const HelloAckMsg&) { return FrameType::kHelloAck; }
    FrameType operator()(const GetDeltaMsg&) { return FrameType::kGetDelta; }
    FrameType operator()(const ResumeMsg&) { return FrameType::kResume; }
    FrameType operator()(const DeltaBeginMsg&) {
      return FrameType::kDeltaBegin;
    }
    FrameType operator()(const DeltaDataMsg&) { return FrameType::kDeltaData; }
    FrameType operator()(const DeltaEndMsg&) { return FrameType::kDeltaEnd; }
    FrameType operator()(const ErrorMsg&) { return FrameType::kError; }
    FrameType operator()(const MetricsReqMsg&) {
      return FrameType::kMetricsReq;
    }
    FrameType operator()(const MetricsMsg&) { return FrameType::kMetrics; }
    FrameType operator()(const StatsReqMsg&) { return FrameType::kStatsReq; }
    FrameType operator()(const StatsMsg&) { return FrameType::kStats; }
  };
  return std::visit(Visitor{}, message);
}

Bytes encode_message(const Message& message, const obs::TraceContext* trace) {
  const Bytes payload =
      std::visit([](const auto& m) { return payload_of(m); }, message);
  return encode_frame(message_type(message), payload, trace);
}

Message decode_message(const Frame& frame) {
  Cursor c{frame.payload};
  switch (frame.type) {
    case FrameType::kHello: {
      HelloMsg m;
      m.protocol_version = c.u32();
      m.max_chunk = c.u32();
      c.done();
      return m;
    }
    case FrameType::kHelloAck: {
      HelloAckMsg m;
      m.protocol_version = c.u32();
      m.release_count = c.u32();
      m.latest = c.u32();
      m.chunk = c.u32();
      c.done();
      return m;
    }
    case FrameType::kGetDelta: {
      GetDeltaMsg m;
      m.from = c.u32();
      m.to = c.u32();
      c.done();
      return m;
    }
    case FrameType::kResume: {
      ResumeMsg m;
      m.from = c.u32();
      m.to = c.u32();
      m.offset = c.u64();
      m.artifact_crc = c.u32();
      c.done();
      return m;
    }
    case FrameType::kDeltaBegin: {
      DeltaBeginMsg m;
      m.from = c.u32();
      m.to = c.u32();
      m.full_image = c.u8();
      m.last_hop = c.u8();
      m.total_size = c.u64();
      m.start_offset = c.u64();
      m.reference_length = c.u64();
      m.version_length = c.u64();
      m.artifact_crc = c.u32();
      c.done();
      return m;
    }
    case FrameType::kDeltaData: {
      DeltaDataMsg m;
      m.offset = c.u64();
      m.data = c.rest();
      return m;
    }
    case FrameType::kDeltaEnd: {
      DeltaEndMsg m;
      m.total_size = c.u64();
      m.artifact_crc = c.u32();
      c.done();
      return m;
    }
    case FrameType::kError: {
      ErrorMsg m;
      m.code = static_cast<ErrorCode>(c.u32());
      m.message = c.rest_string();
      return m;
    }
    case FrameType::kMetricsReq: {
      c.done();
      return MetricsReqMsg{};
    }
    case FrameType::kMetrics: {
      MetricsMsg m;
      m.text = c.rest_string();
      return m;
    }
    case FrameType::kStatsReq: {
      c.done();
      return StatsReqMsg{};
    }
    case FrameType::kStats: {
      StatsMsg m;
      m.text = c.rest_string();
      return m;
    }
  }
  throw FormatError("message: unknown frame type");
}

}  // namespace ipd
