// Epoll reactor: the non-blocking TCP front end behind DeltaServer.
//
// One event-loop thread owns every connection. Sockets are non-blocking;
// each connection is a pair of small state machines:
//
//   read side    idle -> (frame assembled) -> dispatch -> awaiting build
//                EPOLLIN is armed only while idle: the protocol is
//                lockstep (one request, one reply stream), so a request
//                in flight parks the read side and the kernel's receive
//                buffer backpressures a pipelining client for free.
//
//   write side   replies queue as OutBufs (bounded per connection) and
//                drain through writev. DELTA_DATA frames are zero-copy:
//                the body iovec points straight into the store/cache
//                artifact (a pinned shared_ptr<const Bytes>), with only
//                the 20-odd header bytes and the 4-byte CRC trailer
//                materialized per frame. A transfer tops the queue up to
//                max_queued_bytes and then waits for the socket — a slow
//                reader costs one bounded queue, never a thread and
//                never another connection's progress.
//
// CPU-bound work never runs on the loop: GET_DELTA/RESUME go to the
// DeltaService's build pool via serve_async(), and completion comes back
// through an eventfd mailbox that re-arms the connection for writing.
//
// Saturation load-sheds instead of stalling:
//   * connection limit — the accept path answers ERROR{kShed} on the
//     fresh socket and closes it; accepts never stop draining.
//   * build-queue limit — a request beyond max_pending_builds gets
//     ERROR{kShed} immediately (the connection stays up) instead of
//     queueing behind seconds of build latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "net/server_config.hpp"
#include "net/tcp_transport.hpp"
#include "server/delta_service.hpp"

namespace ipd {

class Reactor {
 public:
  /// `service` and `listener` must outlive the reactor. `config` must
  /// already be validated() — DeltaServer does this once at start().
  Reactor(DeltaService& service, const ServerConfig& config,
          TcpListener& listener);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the event-loop thread. Throws TransportError if the epoll or
  /// eventfd plumbing cannot be created.
  void start();

  /// Signal the loop, join it, and close every connection. Idempotent.
  void stop();

  /// Connections currently registered with the loop.
  std::size_t active_connections() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  struct Impl;
  void run();

  DeltaService& service_;
  const ServerConfig config_;
  TcpListener& listener_;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> live_{0};
};

}  // namespace ipd
