#include "net/net_error.hpp"

namespace ipd {

const char* net_errc_name(NetErrc code) noexcept {
  switch (code) {
    case NetErrc::kUnknown: return "unknown";
    case NetErrc::kSocket: return "socket";
    case NetErrc::kBadAddress: return "bad_address";
    case NetErrc::kConnect: return "connect";
    case NetErrc::kBind: return "bind";
    case NetErrc::kListen: return "listen";
    case NetErrc::kPoll: return "poll";
    case NetErrc::kAccept: return "accept";
    case NetErrc::kRead: return "read";
    case NetErrc::kWrite: return "write";
    case NetErrc::kTimeout: return "timeout";
    case NetErrc::kClosedLocally: return "closed_locally";
    case NetErrc::kPeerClosed: return "peer_closed";
    case NetErrc::kTruncated: return "truncated";
    case NetErrc::kBusy: return "busy";
    case NetErrc::kShed: return "shed";
    case NetErrc::kNoTransport: return "no_transport";
    case NetErrc::kFault: return "fault";
  }
  return "?";
}

}  // namespace ipd
