#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "core/checksum.hpp"
#include "core/io.hpp"
#include "core/sync.hpp"
#include "net/net_error.hpp"
#include "net/protocol.hpp"
#include "net/transfer_plan.hpp"
#include "obs/event_ring.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"

namespace ipd {

namespace {

// epoll_event.data.u64 tags: two fixed slots, then connection ids.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kMailboxTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// Idle-scan cadence while no events arrive; also bounds how stale the
/// stopping flag can go unnoticed if an eventfd kick is ever missed.
constexpr int kEpollTickMs = 100;

/// writev gather width: enough to push a whole queued transfer window
/// (head + body + trailer per frame) in one syscall.
constexpr std::size_t kMaxIov = 64;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Same layout as frame.cpp's trace extension — the zero-copy path
/// assembles DELTA_DATA frame headers by hand, and the wire tests pin
/// the two against drift by decoding reactor output with the ordinary
/// FrameReader.
void append_trace_ext(Bytes& out, const obs::TraceContext& trace) {
  out.push_back(static_cast<std::uint8_t>(kTraceExtSize - 1));
  out.push_back(1);  // ext_version
  put_u64(out, trace.trace_hi);
  put_u64(out, trace.trace_lo);
  put_u64(out, trace.span_id);
  put_u64(out, trace.parent_span_id);
  out.push_back(trace.sampled ? 1 : 0);
}

}  // namespace

// The per-connection machinery lives at namespace scope (not in the
// anonymous namespace) because Reactor::Impl — a member of an exported
// class — holds them; internal-linkage member types would trip GCC's
// -Wsubobject-linkage.

/// One queued wire unit. Most frames are fully materialized in `head`;
/// DELTA_DATA frames carry only header + offset there, with the payload
/// borrowed as a slice of the pinned artifact and the CRC-32C trailer in
/// `tail` — the artifact bytes are never copied into a send buffer.
struct OutBuf {
  Bytes head;
  std::shared_ptr<const Bytes> body;  ///< null for materialized frames
  std::size_t body_off = 0;
  std::size_t body_len = 0;
  Bytes tail;
  std::size_t written = 0;  ///< cursor across head|body|tail

  std::size_t size() const noexcept {
    return head.size() + body_len + tail.size();
  }
};

/// A finished (or failed) serve_async build, posted from a pool worker.
struct BuildDone {
  std::uint64_t conn_id = 0;
  ReleaseId to = 0;  ///< the release the client asked for (last_hop)
  std::uint64_t offset = 0;
  std::uint32_t resume_crc = 0;
  bool is_resume = false;
  obs::TraceContext ctx;
  ServeResult result;
  std::exception_ptr error;
};

/// Cross-thread completion mailbox. Build callbacks hold a shared_ptr to
/// this, so a completion firing after the reactor is gone just posts
/// into a mailbox nobody will read — the eventfd lives (and dies) with
/// the last reference, never with the reactor.
struct ReactorMailbox {
  Mutex mutex{"Reactor::mailbox"};
  std::vector<BuildDone> done GUARDED_BY(mutex);
  int event_fd = -1;

  ~ReactorMailbox() {
    if (event_fd >= 0) ::close(event_fd);
  }

  void post(BuildDone d) {
    {
      MutexLock lock(mutex);
      done.push_back(std::move(d));
    }
    kick();
  }

  void kick() const noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof one);  // loop also ticks; best effort
  }

  std::vector<BuildDone> drain() {
    std::uint64_t counter = 0;
    while (::read(event_fd, &counter, sizeof counter) > 0) {
    }
    std::vector<BuildDone> batch;
    MutexLock lock(mutex);
    batch.swap(done);
    return batch;
  }
};

struct Conn {
  std::uint64_t id = 0;
  std::unique_ptr<TcpTransport> transport;
  int fd = -1;
  FrameReader reader;
  bool traced = false;  ///< negotiated kProtocolVersionTraced in HELLO
  std::size_t chunk = 0;
  obs::TraceContext ctx;     ///< per-request context (child of inbound)
  std::uint32_t events = 0;  ///< epoll interest mask currently registered
  bool rdhup = false;        ///< peer closed its write side

  std::deque<OutBuf> outbox;
  std::size_t queued_bytes = 0;
  bool close_after_flush = false;

  /// True from dispatching GET_DELTA/RESUME until the last transfer byte
  /// has left the socket. While set, the read side is parked (lockstep
  /// protocol) and the kernel receive buffer backpressures the peer.
  bool in_flight = false;
  // Streaming state, valid while artifact != nullptr.
  std::shared_ptr<const Bytes> artifact;
  std::uint64_t pos = 0;
  std::uint32_t artifact_crc = 0;
  std::uint64_t frames = 0;
  std::uint64_t transfer_start = 0;
  bool end_enqueued = false;
  std::unique_ptr<obs::Span> span;
  std::unique_ptr<obs::WatchdogGuard> watchdog;

  std::uint64_t last_activity_ns = 0;

  bool idle() const noexcept { return !in_flight && !close_after_flush; }
};

struct Reactor::Impl {
  DeltaService& service;
  const ServerConfig& config;
  TcpListener& listener;
  std::atomic<std::size_t>& live;
  std::atomic<bool>& stopping;

  int epoll_fd = -1;
  std::shared_ptr<ReactorMailbox> mailbox;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_id = kFirstConnId;
  std::size_t pending_builds = 0;
  std::size_t max_pending_builds = 0;

  Impl(DeltaService& service_in, const ServerConfig& config_in,
       TcpListener& listener_in, std::atomic<std::size_t>& live_in,
       std::atomic<bool>& stopping_in)
      : service(service_in),
        config(config_in),
        listener(listener_in),
        live(live_in),
        stopping(stopping_in) {}

  ~Impl() {
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  // ---- metrics plumbing (mirrors DeltaServer::send_counted) -----------

  /// Count an outgoing frame the moment it is queued: an observer that
  /// has consumed the frame must see the counters it implies, and queue
  /// time is server-side latency, not a counting boundary.
  void count_outgoing(std::size_t wire_bytes, const ErrorMsg* err) {
    ServiceMetrics& m = service.metrics();
    m.net_bytes_sent.fetch_add(wire_bytes, std::memory_order_relaxed);
    m.net_frames_sent.fetch_add(1, std::memory_order_relaxed);
    if (err != nullptr) {
      m.net_errors.fetch_add(1, std::memory_order_relaxed);
      obs::global_events().push(obs::EventType::kNetError,
                                static_cast<std::uint64_t>(err->code), 0,
                                err->message);
    }
  }

  void count_shed(std::uint64_t at, std::uint64_t limit) {
    service.metrics().net_shed.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kConnRejected, at, limit);
  }

  // ---- outbox ---------------------------------------------------------

  const obs::TraceContext* reply_trace(const Conn& c) const {
    return (c.traced && c.ctx.valid()) ? &c.ctx : nullptr;
  }

  void enqueue_message(Conn& c, const Message& message) {
    OutBuf ob;
    ob.head = encode_message(message, reply_trace(c));
    c.queued_bytes += ob.head.size();
    count_outgoing(ob.head.size(), std::get_if<ErrorMsg>(&message));
    c.outbox.push_back(std::move(ob));
  }

  /// Zero-copy DELTA_DATA: header + offset field in `head`, the artifact
  /// slice borrowed as an iovec, CRC-32C trailer chained across both.
  void enqueue_data(Conn& c, std::uint64_t pos, std::size_t n) {
    const obs::TraceContext* trace = reply_trace(c);
    const std::size_t ext = trace != nullptr ? kTraceExtSize : 0;
    OutBuf ob;
    ob.head.reserve(kFrameHeaderSize + ext + 8);
    ob.head.push_back('I');
    ob.head.push_back('P');
    ob.head.push_back('D');
    ob.head.push_back('F');
    ob.head.push_back(kFrameVersion);
    ob.head.push_back(static_cast<std::uint8_t>(FrameType::kDeltaData));
    ob.head.push_back(trace != nullptr ? kFrameFlagTrace : 0);
    ob.head.push_back(0);
    put_u32(ob.head, static_cast<std::uint32_t>(ext + 8 + n));
    if (trace != nullptr) append_trace_ext(ob.head, *trace);
    put_u64(ob.head, pos);
    ob.body = c.artifact;
    ob.body_off = static_cast<std::size_t>(pos);
    ob.body_len = n;
    const std::uint32_t crc =
        crc32c(ByteView(c.artifact->data() + ob.body_off, n),
               crc32c(ByteView(ob.head)));
    put_u32(ob.tail, crc);
    c.queued_bytes += ob.size();
    count_outgoing(ob.size(), nullptr);
    c.outbox.push_back(std::move(ob));
  }

  /// Top the output queue up from the active transfer. Bounded by
  /// max_queued_bytes: this is the backpressure point — a slow reader
  /// parks the transfer here with the artifact pinned and zero threads
  /// blocked.
  void pump(Conn& c) {
    if (!c.artifact || c.end_enqueued) return;
    const std::uint64_t total = c.artifact->size();
    while (c.pos < total && c.queued_bytes < config.max_queued_bytes) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(c.chunk, total - c.pos));
      enqueue_data(c, c.pos, n);
      ++c.frames;
      c.pos += n;
      if (c.watchdog) c.watchdog->progress(c.pos);
      service.histograms().net_queue_depth.record(c.queued_bytes);
    }
    if (c.pos >= total) {
      enqueue_message(c, DeltaEndMsg{total, c.artifact_crc});
      ++c.frames;
      c.end_enqueued = true;
      // Close the trace span at END-enqueue, strictly BEFORE the END
      // frame can reach the wire: a client that has seen DELTA_END is
      // then guaranteed the server's net_transfer span is already in
      // the collector (same discipline as counting bytes before the
      // write). Wire-drain time still lands in the transfer_ns
      // histogram when the outbox empties. Span captures
      // current_trace() at destruction; re-scope the request context
      // so the span lands in the client's trace even though the loop
      // thread serves many requests.
      const obs::TraceScope scope(c.ctx);
      c.span.reset();
    }
  }

  /// The last transfer byte has left the socket: close the books.
  void finish_transfer(Conn& c) {
    service.histograms().transfer_ns.record(obs::now_ns() -
                                            c.transfer_start);
    service.histograms().transfer_frames.record(c.frames);
    c.watchdog.reset();
    c.artifact.reset();
    c.end_enqueued = false;
    c.in_flight = false;
  }

  // ---- epoll interest / teardown --------------------------------------

  void update_events(Conn& c) {
    std::uint32_t want =
        c.rdhup ? 0u : static_cast<std::uint32_t>(EPOLLRDHUP);
    if (c.idle()) want |= EPOLLIN;
    if (!c.outbox.empty()) want |= EPOLLOUT;
    if (want == c.events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c.id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
      c.events = want;
    }
  }

  void drop(Conn& c) {
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
    if (c.span) {
      const obs::TraceScope scope(c.ctx);
      c.span.reset();  // disconnected mid-transfer: still record the span
    }
    c.watchdog.reset();
    c.transport->close();
    const std::uint64_t id = c.id;  // copy: erase destroys c
    conns.erase(id);
    live.fetch_sub(1, std::memory_order_relaxed);
  }

  // ---- write side -----------------------------------------------------

  /// Drain the outbox through gather writes, topping it up from the active
  /// transfer as space frees. Returns false when the connection was
  /// dropped (peer vanished mid-write).
  bool flush_writes(Conn& c) {
    for (;;) {
      pump(c);
      if (c.outbox.empty()) break;
      iovec iov[kMaxIov];
      std::size_t iov_count = 0;
      for (const OutBuf& ob : c.outbox) {
        if (iov_count + 3 > kMaxIov) break;
        std::size_t skip = ob.written;
        const auto add = [&](const std::uint8_t* base, std::size_t len) {
          if (len == 0) return;
          if (skip >= len) {
            skip -= len;
            return;
          }
          iov[iov_count].iov_base =
              const_cast<std::uint8_t*>(base) + skip;  // iovec API
          iov[iov_count].iov_len = len - skip;
          ++iov_count;
          skip = 0;
        };
        add(ob.head.data(), ob.head.size());
        if (ob.body) add(ob.body->data() + ob.body_off, ob.body_len);
        add(ob.tail.data(), ob.tail.size());
      }
      if (iov_count == 0) break;
      // sendmsg, not writev: the gather semantics are identical but
      // MSG_NOSIGNAL turns a peer that hung up mid-transfer into EPIPE
      // on the drop() path below instead of a SIGPIPE process kill.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iov_count;
      const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop(c);  // EPIPE/ECONNRESET: peer disconnected mid-transfer
        return false;
      }
      c.last_activity_ns = obs::now_ns();
      std::size_t remaining = static_cast<std::size_t>(n);
      while (remaining > 0) {
        OutBuf& front = c.outbox.front();
        const std::size_t left = front.size() - front.written;
        const std::size_t take = std::min(left, remaining);
        front.written += take;
        remaining -= take;
        if (front.written == front.size()) {
          c.queued_bytes -= front.size();
          c.outbox.pop_front();
        }
      }
    }
    if (c.outbox.empty() && c.end_enqueued) finish_transfer(c);
    if (c.outbox.empty() && c.close_after_flush) {
      drop(c);
      return false;
    }
    // A completed transfer may have left buffered (pipelined) frames
    // behind; serve them now that the connection is idle again.
    if (c.idle() && !process_frames(c)) return false;
    update_events(c);
    return true;
  }

  // ---- read side / dispatch -------------------------------------------

  /// Pop and dispatch buffered frames while the connection is idle.
  /// Returns false if the connection was dropped.
  bool process_frames(Conn& c) {
    while (c.idle()) {
      std::optional<Frame> frame;
      try {
        frame = c.reader.next();
      } catch (const FormatError&) {
        drop(c);  // corrupt inbound frame: the stream cannot be trusted
        return false;
      }
      if (!frame) break;
      Message message;
      try {
        message = decode_message(*frame);
      } catch (const FormatError&) {
        drop(c);
        return false;
      }
      // Adopt the frame's trace context for everything this request
      // does: serve/build spans become children of the client's request
      // span, and replies echo the context back (on v2 sessions).
      const obs::TraceContext inbound =
          frame->trace ? *frame->trace : obs::TraceContext{};
      c.ctx = inbound.valid() ? obs::child_of(inbound) : obs::TraceContext{};
      dispatch(c, message);
    }
    return true;
  }

  void dispatch(Conn& c, const Message& message) {
    if (const auto* hello = std::get_if<HelloMsg>(&message)) {
      if (hello->protocol_version != kProtocolVersion &&
          hello->protocol_version != kProtocolVersionTraced) {
        enqueue_message(
            c, ErrorMsg{ErrorCode::kProtocol,
                        "unsupported protocol version " +
                            std::to_string(hello->protocol_version)});
        c.close_after_flush = true;
        return;
      }
      c.traced = hello->protocol_version >= kProtocolVersionTraced;
      c.chunk = std::min<std::size_t>(
          config.chunk_bytes, std::max<std::uint32_t>(hello->max_chunk, 512));
      HelloAckMsg ack;
      ack.protocol_version = hello->protocol_version;
      ack.release_count =
          static_cast<std::uint32_t>(service.store().release_count());
      ack.latest = ack.release_count == 0 ? 0 : service.store().latest();
      ack.chunk = static_cast<std::uint32_t>(c.chunk);
      enqueue_message(c, ack);
    } else if (const auto* get = std::get_if<GetDeltaMsg>(&message)) {
      begin_request(c, get->from, get->to, 0, 0, false);
    } else if (const auto* resume = std::get_if<ResumeMsg>(&message)) {
      begin_request(c, resume->from, resume->to, resume->offset,
                    resume->artifact_crc, true);
    } else if (std::get_if<MetricsReqMsg>(&message)) {
      enqueue_message(c, MetricsMsg{service.metrics_text()});
    } else if (std::get_if<StatsReqMsg>(&message)) {
      enqueue_message(c, StatsMsg{service.stats_text()});
    } else {
      enqueue_message(
          c, ErrorMsg{ErrorCode::kProtocol, "unexpected message type"});
    }
  }

  void begin_request(Conn& c, ReleaseId from, ReleaseId to,
                     std::uint64_t offset, std::uint32_t resume_crc,
                     bool is_resume) {
    if (pending_builds >= max_pending_builds) {
      // Build-queue saturation: shed THIS request, keep the connection.
      // The client sees a typed, retryable refusal in microseconds
      // instead of a request parked behind seconds of build latency.
      count_shed(pending_builds, max_pending_builds);
      enqueue_message(c, ErrorMsg{ErrorCode::kShed,
                                  "server overloaded (build queue full), "
                                  "retry later"});
      return;
    }
    c.in_flight = true;
    ++pending_builds;
    auto mb = mailbox;
    const std::uint64_t conn_id = c.id;
    const obs::TraceContext ctx = c.ctx;
    service.serve_async(
        from, to, ctx,
        [mb, conn_id, to, offset, resume_crc, is_resume,
         ctx](ServeResult* result, std::exception_ptr error) {
          BuildDone d;
          d.conn_id = conn_id;
          d.to = to;
          d.offset = offset;
          d.resume_crc = resume_crc;
          d.is_resume = is_resume;
          d.ctx = ctx;
          if (error) {
            d.error = error;
          } else {
            d.result = std::move(*result);
          }
          mb->post(std::move(d));
        });
  }

  /// Nonblocking drain of the socket; feeds the frame reader and
  /// dispatches. Stops reading the moment a request goes in flight —
  /// unread bytes stay in the kernel buffer and backpressure the peer.
  bool read_ready(Conn& c) {
    std::uint8_t buf[16384];
    while (c.idle()) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.last_activity_ns = obs::now_ns();
        c.reader.feed(ByteView(buf, static_cast<std::size_t>(n)));
        if (!process_frames(c)) return false;
        continue;
      }
      if (n == 0) {
        drop(c);  // peer said goodbye
        return false;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop(c);
      return false;
    }
    return flush_writes(c);
  }

  // ---- mailbox --------------------------------------------------------

  void drain_mailbox() {
    for (BuildDone& d : mailbox->drain()) {
      if (pending_builds > 0) --pending_builds;
      const auto it = conns.find(d.conn_id);
      if (it == conns.end()) continue;  // peer left while we built
      Conn& c = *it->second;
      if (d.error) {
        try {
          std::rethrow_exception(d.error);
        } catch (const ValidationError& e) {
          enqueue_message(c, ErrorMsg{ErrorCode::kBadRequest, e.what()});
        } catch (const std::exception& e) {
          enqueue_message(c, ErrorMsg{ErrorCode::kInternal, e.what()});
        }
        c.in_flight = false;
        flush_writes(c);
        continue;
      }
      TransferPlan plan = plan_transfer(d.result, d.to, d.offset,
                                        d.resume_crc, d.is_resume);
      if (plan.error) {
        enqueue_message(c, *plan.error);
        c.in_flight = false;
        flush_writes(c);
        continue;
      }
      if (plan.resume_accepted) {
        service.metrics().net_resumes.fetch_add(1,
                                                std::memory_order_relaxed);
        obs::global_events().push(obs::EventType::kNetResume, d.offset,
                                  plan.begin.total_size);
      }
      c.ctx = d.ctx;
      c.artifact = std::move(plan.artifact);
      c.pos = plan.begin.start_offset;
      c.artifact_crc = plan.begin.artifact_crc;
      c.frames = 0;
      c.end_enqueued = false;
      c.transfer_start = obs::now_ns();
      {
        const obs::TraceScope scope(c.ctx);
        c.span = std::make_unique<obs::Span>(obs::Stage::kNetTransfer,
                                             plan.begin.total_size - c.pos);
      }
      c.watchdog = std::make_unique<obs::WatchdogGuard>(
          "server transfer", c.ctx, config.stall_deadline_ms * 1'000'000);
      enqueue_message(c, plan.begin);
      ++c.frames;
      flush_writes(c);
    }
  }

  // ---- accept ---------------------------------------------------------

  /// Refuse a connection over the limit with a best-effort typed reply.
  /// The socket is fresh (empty send buffer), so the single nonblocking
  /// send of the tiny ERROR frame virtually always lands; either way the
  /// accept path never blocks and the listener never stalls.
  void shed_connection(std::unique_ptr<TcpTransport> transport) {
    service.metrics().net_rejected.fetch_add(1, std::memory_order_relaxed);
    count_shed(live.load(std::memory_order_relaxed), config.max_connections);
    const ErrorMsg err{ErrorCode::kShed,
                       "connection limit reached, retry later"};
    const Bytes wire = encode_message(err);
    count_outgoing(wire.size(), &err);
    transport->set_nonblocking(true);
    [[maybe_unused]] const ssize_t n = ::send(
        transport->native_handle(), wire.data(), wire.size(), MSG_NOSIGNAL);
    transport->close();
  }

  void accept_ready() {
    for (;;) {
      std::unique_ptr<TcpTransport> transport;
      try {
        transport = listener.try_accept();
      } catch (const TransportError&) {
        return;  // listener closed under us (stop in progress)
      }
      if (!transport) return;
      if (stopping.load(std::memory_order_relaxed) ||
          live.load(std::memory_order_relaxed) >= config.max_connections) {
        shed_connection(std::move(transport));
        continue;
      }
      transport->set_nonblocking(true);
      auto conn = std::make_unique<Conn>();
      conn->id = next_id++;
      conn->fd = transport->native_handle();
      conn->transport = std::move(transport);
      conn->chunk = config.chunk_bytes;
      conn->events = EPOLLIN | EPOLLRDHUP;
      conn->last_activity_ns = obs::now_ns();
      epoll_event ev{};
      ev.events = conn->events;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
        conn->transport->close();
        continue;
      }
      service.metrics().net_sessions.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->id, std::move(conn));
      live.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // ---- per-event + housekeeping ---------------------------------------

  void handle_conn_event(std::uint64_t id, std::uint32_t ev) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;  // dropped earlier in this batch
    Conn& c = *it->second;
    if (ev & (EPOLLHUP | EPOLLERR)) {
      drop(c);
      return;
    }
    // EPOLLRDHUP means the peer closed its WRITE side — it may still be
    // reading a transfer we owe it. Remember (and disarm: the condition
    // is level-triggered) and let the read path see the EOF, or the
    // write path see the RST, whichever the request state reaches first.
    if (ev & EPOLLRDHUP) c.rdhup = true;
    if (ev & EPOLLOUT) {
      if (!flush_writes(c)) return;
    }
    if (c.idle() && (ev & (EPOLLIN | EPOLLRDHUP))) {
      read_ready(c);
    } else {
      update_events(c);
    }
  }

  void scan_idle() {
    if (config.idle_timeout_ms <= 0) return;
    const std::uint64_t now = obs::now_ns();
    const std::uint64_t limit =
        static_cast<std::uint64_t>(config.idle_timeout_ms) * 1'000'000;
    std::vector<std::uint64_t> expired;
    for (const auto& [id, conn] : conns) {
      // A request waiting on a build is the service's latency, not the
      // peer's silence; everyone else must show read OR write progress.
      if (conn->in_flight && !conn->artifact) continue;
      if (now - conn->last_activity_ns > limit) expired.push_back(id);
    }
    for (const std::uint64_t id : expired) {
      const auto it = conns.find(id);
      if (it != conns.end()) drop(*it->second);
    }
  }

  void run() {
    std::vector<epoll_event> events(128);
    std::uint64_t last_scan = obs::now_ns();
    while (!stopping.load(std::memory_order_relaxed)) {
      const int n =
          ::epoll_wait(epoll_fd, events.data(),
                       static_cast<int>(events.size()), kEpollTickMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd gone: tear down
      }
      for (int i = 0; i < n; ++i) {
        const auto& ev = events[static_cast<std::size_t>(i)];
        if (ev.data.u64 == kListenerTag) {
          accept_ready();
        } else if (ev.data.u64 == kMailboxTag) {
          drain_mailbox();
        } else {
          handle_conn_event(ev.data.u64, ev.events);
        }
      }
      const std::uint64_t now = obs::now_ns();
      if (now - last_scan >=
          static_cast<std::uint64_t>(kEpollTickMs) * 1'000'000) {
        scan_idle();
        last_scan = now;
      }
    }
  }
};

Reactor::Reactor(DeltaService& service, const ServerConfig& config,
                 TcpListener& listener)
    : service_(service), config_(config), listener_(listener) {}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  auto impl = std::make_unique<Impl>(service_, config_, listener_, live_,
                                     stopping_);
  impl->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (impl->epoll_fd < 0) {
    throw TransportError(NetErrc::kPoll, "reactor: epoll_create1",
                         errno_message(errno));
  }
  impl->mailbox = std::make_shared<ReactorMailbox>();
  impl->mailbox->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl->mailbox->event_fd < 0) {
    throw TransportError(NetErrc::kPoll, "reactor: eventfd",
                         errno_message(errno));
  }
  // Derived default: keep every build worker busy with one request
  // queued behind it, with a floor so a small machine (1-2 cores) still
  // absorbs a normal fleet burst instead of shedding a handful of
  // clients the threaded front end used to queue happily.
  impl->max_pending_builds =
      config_.max_pending_builds != 0
          ? config_.max_pending_builds
          : std::max<std::size_t>(2 * service_.build_workers(), 64);

  listener_.set_nonblocking(true);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(impl->epoll_fd, EPOLL_CTL_ADD, listener_.native_handle(),
                  &ev) != 0) {
    throw TransportError(NetErrc::kPoll, "reactor: epoll_ctl listener",
                         errno_message(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kMailboxTag;
  if (::epoll_ctl(impl->epoll_fd, EPOLL_CTL_ADD, impl->mailbox->event_fd,
                  &ev) != 0) {
    throw TransportError(NetErrc::kPoll, "reactor: epoll_ctl eventfd",
                         errno_message(errno));
  }

  impl_ = std::move(impl);
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Reactor::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (impl_ && impl_->mailbox) impl_->mailbox->kick();
  if (thread_.joinable()) thread_.join();
  if (impl_) {
    for (auto& [id, conn] : impl_->conns) conn->transport->close();
    impl_->conns.clear();
    live_.store(0, std::memory_order_relaxed);
    impl_.reset();
  }
}

void Reactor::run() { impl_->run(); }

}  // namespace ipd
