#include "net/frame.hpp"

#include <cstring>
#include <string>

#include "core/checksum.hpp"

namespace ipd {

namespace {

constexpr std::uint8_t kMagic[4] = {'I', 'P', 'D', 'F'};

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kStats);
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kGetDelta: return "GET_DELTA";
    case FrameType::kResume: return "RESUME";
    case FrameType::kDeltaBegin: return "DELTA_BEGIN";
    case FrameType::kDeltaData: return "DELTA_DATA";
    case FrameType::kDeltaEnd: return "DELTA_END";
    case FrameType::kError: return "ERROR";
    case FrameType::kMetricsReq: return "METRICS_REQ";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kStatsReq: return "STATS_REQ";
    case FrameType::kStats: return "STATS";
  }
  return "?";
}

Bytes encode_frame(FrameType type, ByteView payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ValidationError("frame payload too large: " +
                          std::to_string(payload.size()) + " > " +
                          std::to_string(kMaxFramePayload));
  }
  Bytes out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32c(out));
  return out;
}

void FrameReader::feed(ByteView chunk) {
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
}

std::optional<Frame> FrameReader::next() {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = pending_.data() + pos_;
  if (std::memcmp(head, kMagic, 4) != 0) {
    throw FormatError("frame: bad magic");
  }
  if (head[4] != kProtocolVersion) {
    throw FormatError("frame: unsupported protocol version " +
                      std::to_string(head[4]));
  }
  if (!valid_type(head[5])) {
    throw FormatError("frame: unknown type " + std::to_string(head[5]));
  }
  if (head[6] != 0 || head[7] != 0) {
    throw FormatError("frame: nonzero reserved bytes");
  }
  const std::uint32_t len = get_u32(head + 8);
  if (len > kMaxFramePayload) {
    throw FormatError("frame: payload length " + std::to_string(len) +
                      " exceeds limit");
  }
  const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buffered() < total) return std::nullopt;
  const std::uint32_t wire_crc = get_u32(head + kFrameHeaderSize + len);
  const std::uint32_t computed =
      crc32c(ByteView(head, kFrameHeaderSize + len));
  if (wire_crc != computed) {
    throw FormatError("frame: CRC mismatch (corrupted in transit)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(head[5]);
  frame.payload.assign(head + kFrameHeaderSize, head + kFrameHeaderSize + len);
  pos_ += total;
  ++decoded_;
  compact();
  return frame;
}

void FrameReader::finish() const {
  if (buffered() != 0) {
    throw FormatError("frame: stream truncated mid-frame (" +
                      std::to_string(buffered()) + " trailing bytes)");
  }
}

void FrameReader::compact() {
  // Drop consumed bytes once they dominate the buffer; amortized O(1).
  if (pos_ > 4096 && pos_ * 2 > pending_.size()) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace ipd
