#include "net/frame.hpp"

#include <cstring>
#include <string>

#include "core/checksum.hpp"

namespace ipd {

namespace {

constexpr std::uint8_t kMagic[4] = {'I', 'P', 'D', 'F'};

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Trace extension body length for ext_version 1 (after the ext_len
/// byte): version + 16B trace id + 8B span + 8B parent + 1B flags.
constexpr std::size_t kTraceExtBody = kTraceExtSize - 1;

void append_trace_ext(Bytes& out, const obs::TraceContext& trace) {
  out.push_back(static_cast<std::uint8_t>(kTraceExtBody));
  out.push_back(1);  // ext_version
  put_u64(out, trace.trace_hi);
  put_u64(out, trace.trace_lo);
  put_u64(out, trace.span_id);
  put_u64(out, trace.parent_span_id);
  out.push_back(trace.sampled ? 1 : 0);
}

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kStats);
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kGetDelta: return "GET_DELTA";
    case FrameType::kResume: return "RESUME";
    case FrameType::kDeltaBegin: return "DELTA_BEGIN";
    case FrameType::kDeltaData: return "DELTA_DATA";
    case FrameType::kDeltaEnd: return "DELTA_END";
    case FrameType::kError: return "ERROR";
    case FrameType::kMetricsReq: return "METRICS_REQ";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kStatsReq: return "STATS_REQ";
    case FrameType::kStats: return "STATS";
  }
  return "?";
}

Bytes encode_frame(FrameType type, ByteView payload,
                   const obs::TraceContext* trace) {
  const bool traced = trace != nullptr && trace->valid();
  const std::size_t ext = traced ? kTraceExtSize : 0;
  if (payload.size() > kMaxFramePayload - ext) {
    throw ValidationError("frame payload too large: " +
                          std::to_string(payload.size()) + " > " +
                          std::to_string(kMaxFramePayload));
  }
  Bytes out;
  out.reserve(kFrameHeaderSize + ext + payload.size() + kFrameTrailerSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(traced ? kFrameFlagTrace : 0);
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(ext + payload.size()));
  if (traced) append_trace_ext(out, *trace);
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32c(out));
  return out;
}

void FrameReader::feed(ByteView chunk) {
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
}

std::optional<Frame> FrameReader::next() {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = pending_.data() + pos_;
  if (std::memcmp(head, kMagic, 4) != 0) {
    throw FormatError("frame: bad magic");
  }
  if (head[4] != kFrameVersion) {
    throw FormatError("frame: unsupported protocol version " +
                      std::to_string(head[4]));
  }
  if (!valid_type(head[5])) {
    throw FormatError("frame: unknown type " + std::to_string(head[5]));
  }
  if ((head[6] & ~kFrameFlagTrace) != 0 || head[7] != 0) {
    throw FormatError("frame: nonzero reserved bytes");
  }
  const std::uint32_t len = get_u32(head + 8);
  if (len > kMaxFramePayload) {
    throw FormatError("frame: payload length " + std::to_string(len) +
                      " exceeds limit");
  }
  const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
  if (buffered() < total) return std::nullopt;
  const std::uint32_t wire_crc = get_u32(head + kFrameHeaderSize + len);
  const std::uint32_t computed =
      crc32c(ByteView(head, kFrameHeaderSize + len));
  if (wire_crc != computed) {
    throw FormatError("frame: CRC mismatch (corrupted in transit)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(head[5]);
  const std::uint8_t* body = head + kFrameHeaderSize;
  std::size_t body_len = len;
  if ((head[6] & kFrameFlagTrace) != 0) {
    // Trace extension prefixes the payload: [ext_len][ext body]. Skip
    // ext_len bytes even when the body is longer than we understand.
    if (body_len < 1) throw FormatError("frame: trace extension truncated");
    const std::size_t ext_len = body[0];
    if (body_len < 1 + ext_len) {
      throw FormatError("frame: trace extension truncated");
    }
    if (ext_len >= kTraceExtSize - 1 && body[1] == 1) {
      obs::TraceContext ctx;
      ctx.trace_hi = get_u64(body + 2);
      ctx.trace_lo = get_u64(body + 10);
      ctx.span_id = get_u64(body + 18);
      ctx.parent_span_id = get_u64(body + 26);
      ctx.sampled = (body[34] & 1) != 0;
      if (ctx.valid()) frame.trace = ctx;
    }
    body += 1 + ext_len;
    body_len -= 1 + ext_len;
  }
  frame.payload.assign(body, body + body_len);
  pos_ += total;
  ++decoded_;
  compact();
  return frame;
}

void FrameReader::finish() const {
  if (buffered() != 0) {
    throw FormatError("frame: stream truncated mid-frame (" +
                      std::to_string(buffered()) + " trailing bytes)");
  }
}

void FrameReader::compact() {
  // Drop consumed bytes once they dominate the buffer; amortized O(1).
  if (pos_ > 4096 && pos_ * 2 > pending_.size()) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace ipd
