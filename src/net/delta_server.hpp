// DeltaServer: the wire front end of the delta distribution service.
//
// Owns a TCP accept loop (net/tcp_transport) and a session worker pool
// (the existing server/thread_pool). Each accepted connection becomes a
// session task that speaks the framed protocol (net/protocol) and
// answers GET_DELTA / RESUME / METRICS_REQ against a DeltaService. The
// session logic is transport-agnostic — serve_session() takes any
// Transport, which is how the loopback tests drive the full protocol
// without a socket.
//
// Operational guard rails:
//   * connection limit — excess clients get ERROR{kBusy} and a close
//     (retryable: the OTA client backs off and reconnects);
//   * idle timeout — a session that sends nothing for idle_timeout_ms
//     is dropped (SO_RCVTIMEO on TCP);
//   * per-request errors (unknown release ids, bad resume offsets) are
//     answered with typed ERROR frames and the session stays up.
//
// One request streams ONE artifact: the first step of the route the
// service picked. A chain upgrade is the client asking hop by hop, so
// every hop artifact is shared through the service cache across the
// whole straggler fleet.
#pragma once

#include <memory>
#include <thread>
#include <unordered_set>

#include "core/sync.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "server/delta_service.hpp"
#include "server/thread_pool.hpp"

namespace ipd {

struct NetServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Concurrent sessions; one pool worker each. Clients over the limit
  /// receive ERROR{kBusy}.
  std::size_t max_sessions = 32;
  /// Drop a session that stays silent this long (0 = never).
  int idle_timeout_ms = 10'000;
  /// Server-preferred DELTA_DATA payload size; the effective chunk is
  /// min(this, client HELLO max_chunk).
  std::size_t chunk_bytes = 64u << 10;
  /// Register each transfer with the global stall watchdog under this
  /// deadline: a transfer whose last progress is older than this is
  /// flagged with a kStall event carrying its trace id (0 = off).
  std::uint64_t stall_deadline_ms = 0;
};

class DeltaServer {
 public:
  /// `service` must outlive the server.
  explicit DeltaServer(DeltaService& service,
                       const NetServerOptions& options = {});
  ~DeltaServer();

  DeltaServer(const DeltaServer&) = delete;
  DeltaServer& operator=(const DeltaServer&) = delete;

  /// Bind the TCP listener and start accepting. Throws TransportError
  /// if the bind fails.
  void start();

  /// Stop accepting, close every live session, and join all workers.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Actual listening port (after start()).
  std::uint16_t port() const;

  /// Run one protocol session over `transport`, blocking until the peer
  /// hangs up or the connection faults. Used directly by the loopback
  /// tests; the TCP accept loop calls it on pool workers.
  void serve_session(Transport& transport);

  std::size_t active_sessions() const;

  const NetServerOptions& options() const noexcept { return options_; }

 private:
  void accept_loop();
  void handle_transfer(FramedConnection& conn, ReleaseId from, ReleaseId to,
                       std::uint64_t offset, std::uint32_t resume_crc,
                       bool is_resume, std::size_t chunk);
  std::size_t send_counted(FramedConnection& conn, const Message& message);

  DeltaService& service_;
  NetServerOptions options_;

  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  mutable Mutex sessions_mutex_{"DeltaServer::sessions"};
  std::unordered_set<Transport*> sessions_ GUARDED_BY(sessions_mutex_);
  bool stopping_ GUARDED_BY(sessions_mutex_) = false;
  /// Guarded too: start() and stop() may be called from different
  /// threads (the destructor runs stop() from whichever thread drops the
  /// server), and an unguarded flag next to a guarded one is exactly the
  /// kind of torn handshake the annotation pass exists to catch.
  bool started_ GUARDED_BY(sessions_mutex_) = false;
};

}  // namespace ipd
