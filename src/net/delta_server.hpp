// DeltaServer: the wire front end of the delta distribution service.
//
// The TCP path is an epoll reactor (net/reactor.hpp): one event-loop
// thread multiplexes every connection with non-blocking framed I/O,
// bounded per-connection output queues, and zero-copy writev of cached
// artifacts. CPU-bound delta builds run on the DeltaService's shared
// build pool via serve_async(); a completed build re-arms its connection
// for writing through an eventfd mailbox. The loop thread never blocks
// on a socket or a build.
//
// Operational guard rails (all typed, never a silent stall):
//   * connection limit — excess clients get ERROR{kShed} and a close
//     (retryable: the OTA client backs off and reconnects);
//   * build-queue limit — requests beyond max_pending_builds get
//     ERROR{kShed} while the connection stays up;
//   * idle timeout — a connection with no read/write progress for
//     idle_timeout_ms is dropped;
//   * per-request errors (unknown release ids, bad resume offsets) are
//     answered with typed ERROR frames and the connection stays up.
//
// serve_session() remains the blocking, transport-agnostic session loop:
// the loopback tests and the campaign simulator drive the full protocol
// through it without a socket, and it shares the request-planning logic
// (net/transfer_plan.hpp) with the reactor so the two fronts cannot
// drift.
//
// One request streams ONE artifact: the first step of the route the
// service picked. A chain upgrade is the client asking hop by hop, so
// every hop artifact is shared through the service cache across the
// whole straggler fleet.
#pragma once

#include <memory>

#include "core/sync.hpp"
#include "net/reactor.hpp"
#include "net/server_config.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "server/delta_service.hpp"

namespace ipd {

class DeltaServer {
 public:
  /// `service` must outlive the server. Throws ValidationError if
  /// `config` does not validate (see ServerConfig).
  explicit DeltaServer(DeltaService& service,
                       const ServerConfig& config = {});
  ~DeltaServer();

  DeltaServer(const DeltaServer&) = delete;
  DeltaServer& operator=(const DeltaServer&) = delete;

  /// Bind the TCP listener and start the reactor. Throws TransportError
  /// if the bind fails.
  void start();

  /// Stop accepting, close every live connection, and join the reactor.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Actual listening port (after start()).
  std::uint16_t port() const;

  /// Run one protocol session over `transport`, blocking until the peer
  /// hangs up or the connection faults. Used directly by the loopback
  /// tests and the campaign simulator; independent of start()/stop().
  void serve_session(Transport& transport);

  /// Connections currently registered with the reactor.
  std::size_t active_sessions() const;

  const ServerConfig& config() const noexcept { return config_; }

 private:
  void handle_transfer(FramedConnection& conn, ReleaseId from, ReleaseId to,
                       std::uint64_t offset, std::uint32_t resume_crc,
                       bool is_resume, std::size_t chunk);
  std::size_t send_counted(FramedConnection& conn, const Message& message);

  DeltaService& service_;
  ServerConfig config_;

  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<Reactor> reactor_;

  mutable Mutex state_mutex_{"DeltaServer::state"};
  /// start() and stop() may race from different threads (the destructor
  /// runs stop() from whichever thread drops the server); the flag is
  /// guarded so exactly one concurrent start() wins.
  bool started_ GUARDED_BY(state_mutex_) = false;
};

}  // namespace ipd
