#include "net/transport.hpp"

namespace ipd {

std::optional<Message> FramedConnection::receive() {
  for (;;) {
    if (std::optional<Frame> frame = reader_.next()) {
      inbound_trace_ = frame->trace.value_or(obs::TraceContext{});
      return decode_message(*frame);
    }
    std::uint8_t buf[16 << 10];
    const std::size_t n = transport_.read_some(MutByteView(buf, sizeof buf));
    if (n == 0) {
      // Clean EOF mid-frame is a truncation, not a quiet goodbye.
      reader_.finish();
      return std::nullopt;
    }
    bytes_received_ += n;
    reader_.feed(ByteView(buf, n));
  }
}

std::size_t FramedConnection::send(const Message& message) {
  return send_encoded(encode_message(
      message, outbound_trace_.valid() ? &outbound_trace_ : nullptr));
}

std::size_t FramedConnection::send_encoded(ByteView wire) {
  transport_.write_all(wire);
  bytes_sent_ += wire.size();
  ++frames_sent_;
  return wire.size();
}

}  // namespace ipd
