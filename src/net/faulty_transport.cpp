#include "net/faulty_transport.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ipd {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 const FaultOptions& options,
                                 FaultStats* stats)
    : inner_(std::move(inner)),
      options_(options),
      stats_(stats),
      rng_(options.seed) {}

void FaultyTransport::throttle(std::size_t bytes) {
  if (options_.channel == nullptr || options_.time_scale <= 0) return;
  const double seconds =
      options_.channel->transfer_seconds(bytes) * options_.time_scale;
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void FaultyTransport::die(const char* what) {
  dead_.store(true, std::memory_order_relaxed);
  inner_->close();  // peer observes EOF / reset
  throw TransportError(NetErrc::kFault, std::string("injected fault: ") + what);
}

std::size_t FaultyTransport::read_some(MutByteView out) {
  if (dead_.load(std::memory_order_relaxed)) {
    throw TransportError(NetErrc::kFault,
                         "injected fault: connection already dead");
  }
  {
    // Check the byte budget BEFORE blocking on the inner read: the bytes
    // clamped away below were already consumed from the stream, so a
    // post-read check would block forever waiting for data that the
    // budget already swallowed.
    MutexLock lock(mutex_);
    if (options_.kill_after_bytes > 0 &&
        bytes_ >= options_.kill_after_bytes) {
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      die("byte budget exhausted");
    }
  }
  std::size_t n = inner_->read_some(out);
  if (n == 0) return 0;
  throttle(n);
  bool drop = false;
  std::size_t flip_bit = SIZE_MAX;
  {
    MutexLock lock(mutex_);
    if (options_.kill_after_bytes > 0) {
      // Deliver only the in-budget prefix; the tail dies with the link
      // on the next operation.
      n = static_cast<std::size_t>(std::min<std::uint64_t>(
          n, options_.kill_after_bytes - bytes_));
    }
    bytes_ += n;
    if (++ops_ > options_.grace_ops) {
      if (rng_.chance(options_.drop_rate)) {
        drop = true;
      } else if (rng_.chance(options_.flip_rate)) {
        flip_bit = static_cast<std::size_t>(rng_.below(n * 8));
      }
    }
  }
  if (drop) {
    // The bytes read are discarded with the connection — the receiver's
    // framing sees a stream that just stops.
    if (stats_ != nullptr) stats_->drops.fetch_add(1);
    die("read dropped");
  }
  if (flip_bit != SIZE_MAX) {
    if (stats_ != nullptr) stats_->flips.fetch_add(1);
    out[flip_bit / 8] ^= static_cast<std::uint8_t>(1u << (flip_bit % 8));
  }
  return n;
}

void FaultyTransport::write_all(ByteView data) {
  if (dead_.load(std::memory_order_relaxed)) {
    throw TransportError(NetErrc::kFault,
                         "injected fault: connection already dead");
  }
  throttle(data.size());
  enum class Fault { kNone, kDrop, kTruncate, kFlip } fault = Fault::kNone;
  std::size_t cut = 0;
  std::size_t flip_bit = 0;
  {
    MutexLock lock(mutex_);
    if (options_.kill_after_bytes > 0) {
      if (bytes_ >= options_.kill_after_bytes) {
        if (stats_ != nullptr) stats_->drops.fetch_add(1);
        die("byte budget exhausted");
      }
      if (bytes_ + data.size() > options_.kill_after_bytes) {
        fault = Fault::kTruncate;
        cut = static_cast<std::size_t>(options_.kill_after_bytes - bytes_);
      }
      bytes_ += data.size();
    } else {
      bytes_ += data.size();
    }
    if (fault == Fault::kNone && ++ops_ > options_.grace_ops &&
        !data.empty()) {
      if (rng_.chance(options_.drop_rate)) {
        fault = Fault::kDrop;
      } else if (rng_.chance(options_.truncate_rate)) {
        fault = Fault::kTruncate;
        cut = static_cast<std::size_t>(rng_.below(data.size()));
      } else if (rng_.chance(options_.flip_rate)) {
        fault = Fault::kFlip;
        flip_bit = static_cast<std::size_t>(rng_.below(data.size() * 8));
      }
    }
  }
  switch (fault) {
    case Fault::kNone:
      inner_->write_all(data);
      return;
    case Fault::kDrop:
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      die("write dropped");
    case Fault::kTruncate:
      if (cut > 0) inner_->write_all(data.first(cut));
      if (stats_ != nullptr) stats_->truncations.fetch_add(1);
      die("write truncated");
    case Fault::kFlip: {
      if (stats_ != nullptr) stats_->flips.fetch_add(1);
      Bytes mangled(data.begin(), data.end());
      mangled[flip_bit / 8] ^= static_cast<std::uint8_t>(1u << (flip_bit % 8));
      inner_->write_all(mangled);
      return;
    }
  }
}

void FaultyTransport::close() noexcept {
  dead_.store(true, std::memory_order_relaxed);
  inner_->close();
}

void FaultyTransport::set_read_timeout(int ms) {
  inner_->set_read_timeout(ms);
}

std::string FaultyTransport::peer() const {
  return inner_->peer() + " (faulty)";
}

}  // namespace ipd
