// ServerConfig: every operational knob of the wire front end in ONE
// validated struct, shared by DeltaServer and the `ipdelta serve` CLI so
// defaults and error messages live in exactly one place.
//
// This replaces the old NetServerOptions sprawl (and the per-call-site
// clamping that came with it): construct a config, call validated(), and
// hand the result to DeltaServer. validated() rejects nonsense loudly
// (ValidationError with a message naming the field) instead of silently
// "fixing" it — a fleet operator who typed --chunk 0 should learn about
// it at start-up, not from a wire anomaly.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace ipd {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see
  /// DeltaServer::port()).
  std::uint16_t port = 0;

  /// Concurrent connections the reactor will carry. Connections over the
  /// limit are load-shed: they receive ERROR{kShed} and an immediate
  /// close (retryable — the OTA client backs off and reconnects). The
  /// reactor holds per-connection state, not a thread, so this defaults
  /// an order of magnitude above the old thread-per-connection limit.
  std::size_t max_connections = 256;

  /// Drop a connection that makes no progress — nothing read from it and
  /// nothing written to it — for this long (0 = never). A connection
  /// waiting on a delta build is exempt; build latency is bounded by the
  /// build queue, not the peer.
  int idle_timeout_ms = 10'000;

  /// Server-preferred DELTA_DATA payload size; the effective chunk is
  /// min(this, client HELLO max_chunk) and at least 512.
  std::size_t chunk_bytes = 64u << 10;

  /// Register each transfer with the global stall watchdog under this
  /// deadline: a transfer whose last progress is older than this is
  /// flagged with a kStall event carrying its trace id (0 = off).
  std::uint64_t stall_deadline_ms = 0;

  /// Per-connection cap on queued-but-unsent reply bytes. A transfer
  /// tops its output queue up to this bound and then waits for the
  /// socket to drain — a slow reader costs one bounded queue, never
  /// unbounded memory and never another connection's progress.
  std::size_t max_queued_bytes = 4u << 20;

  /// Requests allowed to wait on delta builds at once, across all
  /// connections. Requests beyond it are load-shed with ERROR{kShed}
  /// (the connection stays up). 0 derives the bound at start():
  /// max(2x the service's build workers, 64) — enough to keep every
  /// worker busy with one request queued behind it (with a floor so
  /// small machines still absorb normal fleet bursts), small enough
  /// that shed replies go out in milliseconds instead of requests
  /// stalling for seconds.
  std::size_t max_pending_builds = 0;

  /// Check every field and return a normalized copy (only derived
  /// values are filled in; no silent clamping). Throws ValidationError
  /// naming the offending field otherwise.
  ServerConfig validated() const;
};

}  // namespace ipd
