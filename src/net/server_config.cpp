#include "net/server_config.hpp"

#include <string>

#include "net/frame.hpp"

namespace ipd {

ServerConfig ServerConfig::validated() const {
  if (max_connections == 0) {
    throw ValidationError("server config: max_connections must be >= 1");
  }
  if (chunk_bytes == 0) {
    throw ValidationError("server config: chunk_bytes must be >= 1");
  }
  // A DELTA_DATA frame must leave room for its header, trace extension
  // and the offset field inside kMaxFramePayload; half the cap keeps the
  // arithmetic trivially safe and frames well below the reader's limit.
  if (chunk_bytes > kMaxFramePayload / 2) {
    throw ValidationError(
        "server config: chunk_bytes " + std::to_string(chunk_bytes) +
        " exceeds the frame limit (max " +
        std::to_string(kMaxFramePayload / 2) + ")");
  }
  if (idle_timeout_ms < 0) {
    throw ValidationError("server config: idle_timeout_ms must be >= 0");
  }
  if (max_queued_bytes == 0) {
    throw ValidationError("server config: max_queued_bytes must be >= 1");
  }
  return *this;
}

}  // namespace ipd
