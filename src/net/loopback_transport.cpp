#include "net/loopback_transport.hpp"

#include <algorithm>
#include <chrono>

namespace ipd {

namespace detail {

std::size_t LoopbackEndpoint::read_some(MutByteView out) {
  if (out.empty()) return 0;
  UniqueLock lock(core_->mutex);
  std::deque<std::uint8_t>& queue = is_a_ ? core_->b_to_a : core_->a_to_b;
  const int timeout_ms = timeout_ms_.load(std::memory_order_relaxed);
  if (timeout_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (queue.empty() && !core_->closed) {
      if (core_->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          queue.empty() && !core_->closed) {
        throw TransportError(NetErrc::kTimeout,
                             "loopback: read timeout (idle connection)");
      }
    }
  } else {
    while (queue.empty() && !core_->closed) core_->cv.wait(lock);
  }
  if (queue.empty()) return 0;  // closed and drained: EOF
  const std::size_t n = std::min(out.size(), queue.size());
  std::copy_n(queue.begin(), n, out.begin());
  queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void LoopbackEndpoint::write_all(ByteView data) {
  MutexLock lock(core_->mutex);
  if (core_->closed) {
    throw TransportError(NetErrc::kClosedLocally,
                         "loopback: write to closed connection");
  }
  std::deque<std::uint8_t>& queue = is_a_ ? core_->a_to_b : core_->b_to_a;
  queue.insert(queue.end(), data.begin(), data.end());
  core_->cv.notify_all();
}

void LoopbackEndpoint::close() noexcept {
  MutexLock lock(core_->mutex);
  core_->closed = true;
  core_->cv.notify_all();
}

}  // namespace detail

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair() {
  auto core = std::make_shared<detail::LoopbackCore>();
  return {std::make_unique<detail::LoopbackEndpoint>(core, true),
          std::make_unique<detail::LoopbackEndpoint>(core, false)};
}

}  // namespace ipd
