#include "net/transfer_plan.hpp"

#include <algorithm>

#include "core/checksum.hpp"
#include "delta/codec.hpp"

namespace ipd {

TransferPlan plan_transfer(const ServeResult& result, ReleaseId requested_to,
                           std::uint64_t offset, std::uint32_t resume_crc,
                           bool is_resume) {
  TransferPlan plan;
  // One artifact per request: the first step of the chosen route. On
  // RESUME the client repeats its original (from, to) request — so
  // serve() re-derives the same route and last_hop stays truthful — and
  // echoes the artifact CRC it was receiving; serve() is deterministic
  // so the rebuilt artifact is byte-identical — but if route selection
  // shifted (e.g. publisher reconfigured), refuse rather than splice
  // two different artifacts.
  const ServedStep* step = &result.steps.front();
  std::uint32_t artifact_crc = crc32c(*step->bytes);
  if (is_resume && artifact_crc != resume_crc) {
    const auto match =
        std::find_if(result.steps.begin(), result.steps.end(),
                     [&](const ServedStep& s) {
                       return crc32c(*s.bytes) == resume_crc;
                     });
    if (match == result.steps.end()) {
      plan.error = ErrorMsg{ErrorCode::kBadResume,
                            "artifact changed since the transfer "
                            "started; restart from GET_DELTA"};
      plan.refusal_note = "resume refused: artifact changed";
      return plan;
    }
    step = &*match;
    artifact_crc = resume_crc;
  }
  const Bytes& artifact = *step->bytes;
  if (offset > artifact.size()) {
    plan.error = ErrorMsg{ErrorCode::kBadResume,
                          "resume offset beyond artifact end"};
    plan.refusal_note = "resume refused: offset beyond artifact end";
    return plan;
  }

  DeltaBeginMsg& begin = plan.begin;
  begin.from = step->from;
  begin.to = step->to;
  begin.full_image = step->full_image ? 1 : 0;
  begin.last_hop = step->to == requested_to ? 1 : 0;
  begin.total_size = artifact.size();
  begin.start_offset = offset;
  begin.artifact_crc = artifact_crc;
  if (step->full_image) {
    begin.reference_length = 0;
    begin.version_length = artifact.size();
  } else {
    // The container header is self-describing; lift the buffer-sizing
    // fields a streaming device needs before its first payload byte.
    const auto header = try_parse_header(artifact);
    if (!header) {
      plan.error = ErrorMsg{ErrorCode::kInternal,
                            "artifact container header unreadable"};
      return plan;
    }
    begin.reference_length = header->first.reference_length;
    begin.version_length = header->first.version_length;
  }
  plan.artifact = step->bytes;
  plan.resume_accepted = is_resume;
  return plan;
}

}  // namespace ipd
