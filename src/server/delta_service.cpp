#include "server/delta_service.hpp"

#include <algorithm>
#include <string>

#include "obs/event_ring.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "server/fingerprint.hpp"

namespace ipd {

DeltaService::DeltaService(const VersionStore& store,
                           const ServiceOptions& options)
    : store_(store),
      options_(options),
      fingerprint_(fingerprint_pipeline(options.pipeline)),
      // Devices apply served deltas without scratch space, so
      // write-before-read conflicts are fatal here, not advisory.
      verifier_(VerifyOptions{.require_in_place = true}),
      cache_(options.cache_budget, options.cache_shards, &metrics_),
      pool_(options.workers),
      pipeline_(options.pipeline, &pool_) {
  if (options_.direct_gain_threshold <= 0.0) {
    throw ValidationError("delta service: direct_gain_threshold must be > 0");
  }
}

/// Verify one artifact at a trust boundary. Returns true when servable;
/// counts warnings either way and counts the reject on failure.
bool DeltaService::admit(ByteView artifact, std::string* why) {
  const Report report = verifier_.check(artifact);
  if (report.warning_count() > 0) {
    metrics_.verify_warns.fetch_add(report.warning_count(),
                                    std::memory_order_relaxed);
  }
  if (report.ok()) return true;
  metrics_.verify_rejects.fetch_add(1, std::memory_order_relaxed);
  std::string reason = "delta failed static verification";
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kError) {
      reason += ": " + f.message;
      break;
    }
  }
  obs::global_events().push(obs::EventType::kVerifyReject, artifact.size(), 0,
                            reason);
  if (why != nullptr) *why = reason;
  return false;
}

std::shared_ptr<const Bytes> DeltaService::fetch_delta(ReleaseId from,
                                                       ReleaseId to,
                                                       bool* hit,
                                                       bool* coalesced) {
  const DeltaKey key{from, to, fingerprint_};
  if (auto cached = cache_.get(key)) {
    *hit = true;
    return cached;
  }
  *hit = false;
  bool leader = false;
  auto value = flight_.run(
      key,
      [&]() -> std::shared_ptr<const Bytes> {
        // Double-check under the flight: a previous leader may have
        // finished (and cached) between our miss and our join, in which
        // case there is nothing to build. This is what makes builds
        // exactly-once per key while the entry stays resident.
        if (auto cached = cache_.get(key)) return cached;
        auto reference = store_.body(from);
        auto version = store_.body(to);
        // The trace context is thread-local; carry it across the pool
        // boundary explicitly so build spans join the request's trace.
        const obs::TraceContext trace = obs::current_trace();
        auto build = [this, reference, version,
                      trace]() -> std::shared_ptr<const Bytes> {
          const obs::TraceScope trace_scope(trace);
          // Runs ON a pool worker; any intra-build fan-out posts
          // helper tasks back to the same pool (parallel_for's
          // caller participation makes that deadlock-free), so
          // concurrent builds and parallel stages share one
          // machine-sized pool with no oversubscription.
          BuildResult built = pipeline_.build_inplace(*reference, *version);
          metrics_.builds.fetch_add(1, std::memory_order_relaxed);
          metrics_.build_ns.fetch_add(built.timing.total_ns,
                                      std::memory_order_relaxed);
          histograms_.build_latency_ns.record(built.timing.total_ns);
          histograms_.diff_fanout.record(built.timing.diff_segments);
          histograms_.crwi_fanout.record(built.timing.crwi_chunks);
          return std::make_shared<const Bytes>(std::move(built.delta));
        };
        // serve() itself may be running ON a pool worker (serve_async):
        // submit(...).get() there can wedge the whole pool — every
        // worker blocked in get() on builds that never start. Build
        // inline instead; the thread is a build worker either way.
        auto built = pool_.on_worker_thread() ? build()
                                              : pool_.submit(build).get();
        if (options_.verify_artifacts) {
          std::string why;
          if (!admit(ByteView(*built), &why)) {
            // Our own pipeline produced an unservable artifact — that is
            // a converter bug, and serving it would push the corruption
            // to every device on this hop. Fail the request instead.
            throw Error("delta service: built artifact for hop " +
                        std::to_string(from) + " -> " + std::to_string(to) +
                        " rejected: " + why);
          }
        }
        cache_.put(key, built);
        return built;
      },
      &leader);
  if (!leader) {
    *coalesced = true;
    metrics_.coalesced_waits.fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

bool DeltaService::preload(ReleaseId from, ReleaseId to, Bytes delta) {
  const std::size_t releases = store_.release_count();
  if (from >= to || to >= releases) {
    throw ValidationError("delta service: need from < to < release_count");
  }
  // Endpoint pinning first: a structurally perfect delta between the
  // WRONG releases is just as much an attack as a conflicting one. The
  // header's (length, crc) pair must match the store's content address.
  std::optional<std::pair<DeltaHeader, std::size_t>> parsed;
  try {
    parsed = try_parse_header(delta);
  } catch (const FormatError&) {
    parsed.reset();
  }
  const ContentKey want = store_.content_key(to);
  if (!parsed || parsed->first.reference_length != store_.body(from)->size() ||
      parsed->first.version_length != want.length ||
      parsed->first.version_crc != want.crc) {
    metrics_.verify_rejects.fetch_add(1, std::memory_order_relaxed);
    obs::global_events().push(obs::EventType::kVerifyReject, from, to,
                              "preload endpoint mismatch");
    return false;
  }
  if (!admit(ByteView(delta), nullptr)) return false;
  cache_.put(DeltaKey{from, to, fingerprint_},
             std::make_shared<const Bytes>(std::move(delta)));
  return true;
}

ServeResult DeltaService::serve(ReleaseId from, ReleaseId to) {
  const std::size_t releases = store_.release_count();
  if (from >= to || to >= releases) {
    throw ValidationError("delta service: need from < to < release_count");
  }
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t serve_start = obs::now_ns();
  obs::Span span(obs::Stage::kServe);

  ServeResult result;
  result.cache_hit = true;
  bool hit = false;

  const auto target = store_.body(to);
  const std::uint64_t version_size = target->size();

  auto direct = fetch_delta(from, to, &hit, &result.coalesced);
  result.cache_hit = hit;

  const bool direct_wins =
      static_cast<double>(direct->size()) <=
      options_.direct_gain_threshold * static_cast<double>(version_size);
  const std::size_t hops = to - from;

  if (!direct_wins && hops >= 2 && hops <= options_.max_chain_hops) {
    // Drifted history: price the per-release chain (every hop delta is
    // shared with all other stragglers, so building them is amortized)
    // and the full image, and serve the byte-cheapest route.
    std::vector<ServedStep> chain;
    std::uint64_t chain_bytes = 0;
    for (ReleaseId at = from; at < to; ++at) {
      bool hop_hit = false;
      auto hop = fetch_delta(at, at + 1, &hop_hit, &result.coalesced);
      if (!hop_hit) result.cache_hit = false;
      chain_bytes += hop->size() + options_.per_hop_overhead;
      chain.push_back(ServedStep{at, at + 1, false, std::move(hop)});
    }
    const std::uint64_t direct_cost =
        direct->size() + options_.per_hop_overhead;
    const std::uint64_t image_cost =
        version_size + options_.per_hop_overhead;
    const std::uint64_t best =
        std::min({chain_bytes, direct_cost, image_cost});
    if (best == chain_bytes) {
      result.steps = std::move(chain);
      metrics_.chains_served.fetch_add(1, std::memory_order_relaxed);
    } else if (best == image_cost) {
      result.steps.push_back(ServedStep{from, to, true, target});
      metrics_.full_images_served.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (!direct_wins &&
             static_cast<std::uint64_t>(direct->size()) > version_size) {
    // Single hop (or chain too long) and the delta is outright larger
    // than the file: ship the image.
    result.steps.push_back(ServedStep{from, to, true, target});
    metrics_.full_images_served.fetch_add(1, std::memory_order_relaxed);
  }

  if (result.steps.empty()) {
    result.steps.push_back(ServedStep{from, to, false, std::move(direct)});
    metrics_.deltas_served.fetch_add(1, std::memory_order_relaxed);
  }
  for (const ServedStep& step : result.steps) {
    result.total_bytes += step.bytes->size();
  }
  metrics_.bytes_served.fetch_add(result.total_bytes,
                                  std::memory_order_relaxed);
  span.add_bytes(result.total_bytes);
  histograms_.serve_ns.record(obs::now_ns() - serve_start);
  histograms_.artifact_bytes.record(result.total_bytes);
  return result;
}

void DeltaService::serve_async(ReleaseId from, ReleaseId to,
                               obs::TraceContext trace, ServeCallback done) {
  // The callback rides in a shared_ptr so the rejection path below can
  // still reach it after the task (holding the other reference) has been
  // moved into — and discarded by — a pool that refused it.
  auto cb = std::make_shared<ServeCallback>(std::move(done));
  try {
    pool_.post([this, from, to, trace, cb]() {
      const obs::TraceScope scope(trace);
      try {
        ServeResult result = serve(from, to);
        (*cb)(&result, nullptr);
      } catch (...) {
        (*cb)(nullptr, std::current_exception());
      }
    });
  } catch (...) {
    // Pool shutting down: the request can never run. Reject inline so
    // the caller is always answered exactly once.
    (*cb)(nullptr, std::current_exception());
  }
}

std::string DeltaService::metrics_text() const {
  const DeltaCache::Stats stats = cache_.stats();
  std::string text = metrics_.snapshot();
  text += "bytes cached:      " + std::to_string(stats.bytes_held) + " of " +
          std::to_string(cache_.byte_budget()) + " budget (" +
          std::to_string(stats.entries) + " entries, " +
          std::to_string(cache_.shard_count()) + " shards)\n";
  return text;
}

std::string DeltaService::stats_text() const {
  obs::PrometheusRenderer r;
  metrics_.for_each([&](const char* name, std::uint64_t value) {
    r.counter(name, value);
  });
  histograms_.for_each([&](const char* name, const obs::Histogram& h) {
    r.histogram(name, h.snapshot());
  });
  const DeltaCache::Stats stats = cache_.stats();
  r.gauge("cache_bytes_held", stats.bytes_held);
  r.gauge("cache_byte_budget", cache_.byte_budget());
  r.gauge("cache_entries", stats.entries);
  // Pipeline stage aggregates cover every build this process ran, not
  // only this service's — they are process-global by design.
  obs::flush_thread_stats();
  const obs::StageTotals totals = obs::stage_totals();
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    r.counter("stage_ns", "stage", obs::stage_name(stage), totals[stage].ns);
  }
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    r.counter("stage_bytes", "stage", obs::stage_name(stage),
              totals[stage].bytes);
  }
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    r.counter("stage_ops", "stage", obs::stage_name(stage),
              totals[stage].count);
  }
  r.counter("events_recorded", obs::global_events().pushed());
  return r.str();
}

Bytes apply_served(const ServeResult& result, ByteView from_body) {
  if (result.steps.empty()) {
    throw ValidationError("apply_served: empty response");
  }
  Bytes image(from_body.begin(), from_body.end());
  for (const ServedStep& step : result.steps) {
    if (step.full_image) {
      image.assign(step.bytes->begin(), step.bytes->end());
      continue;
    }
    const DeltaFile parsed = deserialize_delta(*step.bytes);
    image.resize(std::max<std::size_t>(parsed.reference_length,
                                       parsed.version_length));
    const length_t new_len = apply_delta_inplace(*step.bytes, image);
    image.resize(static_cast<std::size_t>(new_len));
  }
  return image;
}

}  // namespace ipd
