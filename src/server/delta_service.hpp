// The delta distribution service core: answer "device at release i wants
// release j" for a whole fleet, concurrently.
//
// Request path (store -> cache -> singleflight -> pool -> metrics):
//
//   serve(i, j)
//     ├─ DeltaCache lookup on (i, j, pipeline fingerprint)   [sharded LRU]
//     ├─ miss: Singleflight — first thread in becomes the build leader,
//     │        concurrent requesters for the same key wait for free
//     ├─ leader: Pipeline::build_inplace(i, j) on the worker ThreadPool
//     │          (which also absorbs the build's own parallel fan-out,
//     │          so total build threads stay bounded), insert the cache
//     └─ response selection: the direct delta is served only while it is
//        a real win; a drifted history where delta(i, j) approaches the
//        full image falls back UpgradePlanner-style to the chain of
//        per-release hops i -> i+1 -> ... -> j (each hop an in-place
//        delta that every other straggler reuses) or to the full image,
//        whichever is byte-cheapest.
//
// Every response artifact is an *in-place* delta (or a raw image), so the
// requesting device needs no scratch space at any hop — the paper's §1
// scenario operated at fleet scale.
//
// Thread-safe throughout; serve() may be called from any number of
// threads. Artifacts are shared_ptr<const Bytes> handed out zero-copy.
#pragma once

#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "ipdelta.hpp"
#include "obs/trace_context.hpp"
#include "server/delta_cache.hpp"
#include "server/metrics.hpp"
#include "server/singleflight.hpp"
#include "server/thread_pool.hpp"
#include "server/version_store.hpp"
#include "verify/verifier.hpp"

namespace ipd {

struct ServiceOptions {
  /// How every delta this service builds is produced; part of the cache
  /// key, so two services with different pipelines never share entries.
  PipelineOptions pipeline;
  /// Total bytes of built deltas kept resident across all cache shards.
  std::uint64_t cache_budget = 64ull << 20;
  std::size_t cache_shards = 16;
  /// Build workers; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Serve the direct delta while
  ///     direct_size <= direct_gain_threshold * version_size;
  /// beyond that the delta stopped pulling its weight and the chain /
  /// full-image fallbacks are evaluated.
  double direct_gain_threshold = 0.5;
  /// Per-artifact fixed response overhead used when comparing routes
  /// (mirrors PlannerOptions::per_hop_overhead).
  std::uint64_t per_hop_overhead = 512;
  /// Longest per-release chain the fallback will consider building.
  std::size_t max_chain_hops = 8;
  /// Statically verify every delta artifact (src/verify/) before it is
  /// cached or served: no byte stream leaves this service that could
  /// brick an in-place applier. Builds that fail verification throw —
  /// a pipeline bug must be loud, not served.
  bool verify_artifacts = true;
};

/// One artifact of a response. `full_image` steps carry the raw release
/// body; the rest carry in-place deltas for apply_delta_inplace().
struct ServedStep {
  ReleaseId from = 0;
  ReleaseId to = 0;
  bool full_image = false;
  std::shared_ptr<const Bytes> bytes;
};

struct ServeResult {
  std::vector<ServedStep> steps;  ///< apply in order
  std::uint64_t total_bytes = 0;  ///< sum of step payloads
  bool cache_hit = false;   ///< no build ran anywhere in this response
  bool coalesced = false;   ///< waited behind another request's build
};

class DeltaService {
 public:
  /// `store` must outlive the service. Releases may keep being published
  /// while the service runs; a request only sees ids it asks for.
  explicit DeltaService(const VersionStore& store,
                        const ServiceOptions& options = {});

  /// Serve the upgrade `from` -> `to` (from < to). Blocks while a needed
  /// delta builds; concurrent identical requests coalesce onto one build.
  ServeResult serve(ReleaseId from, ReleaseId to);

  /// Completion of serve_async(). Exactly one of the arguments is set:
  /// `result` points at the response (valid only for the duration of the
  /// call — move out of it), or `error` carries what serve() threw.
  using ServeCallback =
      std::function<void(ServeResult* result, std::exception_ptr error)>;

  /// Non-blocking serve(): runs the request on the build ThreadPool and
  /// invokes `done` from a pool worker when the response is ready. The
  /// reactor front end (net/reactor.cpp) uses this so its event-loop
  /// thread never blocks behind a delta build. `trace` is installed as
  /// the worker's thread-local trace context for the whole request, so
  /// serve/build spans join the caller's trace exactly as they would on
  /// a blocking call. If the pool is shutting down, `done` is invoked
  /// inline with the rejection.
  void serve_async(ReleaseId from, ReleaseId to, obs::TraceContext trace,
                   ServeCallback done);

  /// Admit an externally built delta artifact for the hop `from` -> `to`
  /// (a publisher side-loading deltas it produced offline). This is a
  /// trust boundary: the artifact is statically verified — container,
  /// bounds, coverage, in-place safety — and its header endpoints must
  /// match the store's bodies (lengths and version CRC). Returns true
  /// when admitted into the cache; false (and counts verify_rejects)
  /// when refused. Throws ValidationError only for out-of-range ids.
  bool preload(ReleaseId from, ReleaseId to, Bytes delta);

  const ServiceMetrics& metrics() const noexcept { return metrics_; }
  /// The release history this service fronts (HELLO advertises its
  /// extent to wire clients).
  const VersionStore& store() const noexcept { return store_; }
  /// Mutable access for bench warm-up/measure phase boundaries (reset()).
  ServiceMetrics& metrics() noexcept { return metrics_; }
  const ServiceHistograms& histograms() const noexcept { return histograms_; }
  ServiceHistograms& histograms() noexcept { return histograms_; }
  const DeltaCache& cache() const noexcept { return cache_; }
  const ServiceOptions& options() const noexcept { return options_; }
  /// Resolved build-pool width (ServiceOptions::workers with 0 expanded
  /// to hardware concurrency). The reactor derives its default build
  /// admission limit from this.
  std::size_t build_workers() const noexcept { return pool_.worker_count(); }

  /// Metrics counters plus cache residency, ready to print.
  std::string metrics_text() const;

  /// Prometheus-style text exposition: every ServiceMetrics counter,
  /// every ServiceHistograms summary (p50/p90/p99), cache residency
  /// gauges, per-stage pipeline time and the event-ring depth. This is
  /// the payload behind the wire STATS message and `ipdelta stats`.
  std::string stats_text() const;

 private:
  std::shared_ptr<const Bytes> fetch_delta(ReleaseId from, ReleaseId to,
                                           bool* hit, bool* coalesced);
  /// Run the verifier over an artifact about to cross a trust boundary,
  /// maintaining the verify_* counters. `why` (optional) receives the
  /// first error finding on refusal.
  bool admit(ByteView artifact, std::string* why);

  const VersionStore& store_;
  ServiceOptions options_;
  std::uint64_t fingerprint_;
  ServiceMetrics metrics_;
  ServiceHistograms histograms_;
  Verifier verifier_;
  DeltaCache cache_;
  Singleflight<DeltaKey, std::shared_ptr<const Bytes>, DeltaKeyHash> flight_;
  ThreadPool pool_;
  /// Shares pool_: builds run ON the pool and their intra-build fan-out
  /// posts helper tasks to the same pool, so total build threads never
  /// exceed `workers` regardless of how many requests are in flight
  /// (see docs/SERVER.md). Declared after pool_ — construction order.
  Pipeline pipeline_;
};

/// Client-side helper: apply a served response to a buffer holding the
/// `from` release body and return the reconstructed `to` body. Used by
/// the demo, the CLI `serve` verifier, and the tests.
Bytes apply_served(const ServeResult& result, ByteView from_body);

}  // namespace ipd
