// Sharded, byte-budgeted LRU cache of built delta artifacts.
//
// DeltaFS's observation applies directly here: a delta between two
// released versions is immutable and requested by every device making the
// same hop, so recomputing it per request wastes the dominant cost
// (differencing + conversion). The cache maps
//     (from release, to release, pipeline fingerprint)  ->  delta bytes
// and bounds *bytes*, not entries — artifacts span three orders of
// magnitude and an entry count says nothing about memory.
//
// Concurrency: the key space is hash-partitioned into independent shards,
// each with its own mutex, LRU list, and slice of the byte budget, so
// concurrent lookups on different deltas do not serialize. Values are
// shared_ptr<const Bytes>: eviction only drops the cache's reference —
// requests already holding the artifact keep a valid one (no
// copy-under-lock, no use-after-evict).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "core/types.hpp"
#include "server/metrics.hpp"
#include "server/version_store.hpp"

namespace ipd {

class Verifier;

/// Cache key: the endpoints plus how the delta was produced
/// (fingerprint_pipeline of the service's PipelineOptions).
struct DeltaKey {
  ReleaseId from = 0;
  ReleaseId to = 0;
  std::uint64_t fingerprint = 0;

  bool operator==(const DeltaKey&) const noexcept = default;
};

struct DeltaKeyHash {
  std::size_t operator()(const DeltaKey& k) const noexcept {
    // splitmix64 over the packed endpoints, xor-folded with the pipeline
    // fingerprint (itself already well mixed).
    std::uint64_t x = (static_cast<std::uint64_t>(k.from) << 32) | k.to;
    x ^= k.fingerprint;
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

class DeltaCache {
 public:
  struct Stats {
    std::uint64_t bytes_held = 0;
    std::size_t entries = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rejected_unsafe = 0;  ///< refused by the verifier gate
  };

  /// `byte_budget` is split evenly across `shards` (rounded up to a power
  /// of two). `metrics`, when non-null, receives hit/miss/eviction
  /// counts; it must outlive the cache. `gate`, when non-null, statically
  /// verifies every artifact before it is admitted (unsafe bytes must
  /// never become servable just because they were inserted once); it must
  /// outlive the cache too.
  explicit DeltaCache(std::uint64_t byte_budget, std::size_t shards = 16,
                      ServiceMetrics* metrics = nullptr,
                      const Verifier* gate = nullptr);

  /// Look up and touch (moves the entry to the shard's MRU position).
  std::shared_ptr<const Bytes> get(const DeltaKey& key);

  /// Insert (or refresh) an entry, evicting LRU entries until the shard
  /// fits its budget slice. Returns false — and caches nothing — when the
  /// value alone exceeds the slice (a delta bigger than that is cheaper
  /// to rebuild than to let it wipe out the whole shard), or when the
  /// verifier gate finds error-severity defects in it.
  bool put(const DeltaKey& key, std::shared_ptr<const Bytes> value);

  std::uint64_t byte_budget() const noexcept { return budget_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Aggregated over all shards (each shard locked briefly in turn).
  Stats stats() const;

 private:
  struct Entry {
    DeltaKey key;
    std::shared_ptr<const Bytes> value;
  };
  struct Shard {
    Mutex mutex{"DeltaCache::Shard"};
    std::list<Entry> lru GUARDED_BY(mutex);  // front = most recently used
    std::unordered_map<DeltaKey, std::list<Entry>::iterator, DeltaKeyHash>
        index GUARDED_BY(mutex);
    std::uint64_t bytes GUARDED_BY(mutex) = 0;
    std::uint64_t evictions GUARDED_BY(mutex) = 0;
    std::uint64_t rejected GUARDED_BY(mutex) = 0;
    std::uint64_t rejected_unsafe GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const DeltaKey& key) noexcept;

  std::uint64_t budget_;
  std::uint64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ServiceMetrics* metrics_;
  const Verifier* gate_;
};

}  // namespace ipd
