// The service's release history: an append-only, content-addressed store.
//
// A publisher's history is an ordered sequence of immutable release
// bodies. The store hands bodies out as shared_ptr<const Bytes> so a
// request thread can diff or transmit a release while a publish is in
// flight — once published, a body never changes and never moves. Each
// release also carries a ContentKey (CRC-32C + length, the same pair the
// delta container embeds) so a device that only knows the checksum of the
// image it is running can be located in the history.
//
// VersionStore is both the concrete in-memory store and the interface
// the DeltaService consumes: every method is virtual, so a durable
// backend (store/store_backed_version_store.hpp, which reconstructs
// bodies from on-disk delta chains) slots in without the service
// noticing. The in-memory store remains the right choice for embedded
// and test use, but it is NOT durable — a process restart loses the
// whole history. Deployments that must survive restarts use the
// ArtifactStore-backed subclass; see docs/STORE.md.
//
// Duplicate content: publishing bytes that already exist in the history
// is allowed and creates a distinct release id (a rollback re-release is
// a new event in the history, not an alias of the old one). find() then
// resolves the shared ContentKey to the NEWEST such release — latest
// wins — because a device reporting that checksum should be routed from
// the most recent occurrence, where materialized deltas are likeliest to
// exist. Each shadowing publish increments the `duplicate_publishes`
// counter so operators can spot republished content.
//
// Thread-safe: publishes take an exclusive lock, lookups a shared one.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/sync.hpp"
#include "core/types.hpp"

namespace ipd {

/// Index of a release within a VersionStore (0 = oldest).
using ReleaseId = std::uint32_t;

/// Content address of a release body: the (crc32c, length) pair a delta
/// container already carries for its endpoints.
struct ContentKey {
  std::uint32_t crc = 0;
  length_t length = 0;

  auto operator<=>(const ContentKey&) const = default;
};

class VersionStore {
 public:
  VersionStore() = default;
  virtual ~VersionStore() = default;

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Append a release to the history; returns its id (== prior count).
  virtual ReleaseId publish(Bytes body);

  virtual std::size_t release_count() const;

  /// Immutable body of release `id`. Throws ValidationError on a bad id.
  virtual std::shared_ptr<const Bytes> body(ReleaseId id) const;

  /// Content address of release `id`. Throws ValidationError on a bad id.
  virtual ContentKey content_key(ReleaseId id) const;

  /// Most recent release with this content, if any — how a device that
  /// reports only its image checksum is mapped into the history. When
  /// the same bytes were published more than once, the newest release
  /// shadows the older ones (latest wins; see the header comment).
  virtual std::optional<ReleaseId> find(const ContentKey& key) const;

  /// Id of the newest release. Throws ValidationError when empty.
  virtual ReleaseId latest() const;

  /// How many publishes re-used content an earlier release already had
  /// (each one shadows the older release in find()).
  std::uint64_t duplicate_publishes() const noexcept {
    return duplicate_publishes_.load(std::memory_order_relaxed);
  }

 protected:
  /// Subclasses count their own shadowing publishes through this.
  void count_duplicate_publish() noexcept {
    duplicate_publishes_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable SharedMutex mutex_{"VersionStore"};
  std::vector<std::shared_ptr<const Bytes>> bodies_ GUARDED_BY(mutex_);
  std::vector<ContentKey> keys_ GUARDED_BY(mutex_);
  /// Latest id per content.
  std::map<ContentKey, ReleaseId> by_content_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> duplicate_publishes_{0};
};

}  // namespace ipd
