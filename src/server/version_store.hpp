// The service's release history: an append-only, content-addressed store.
//
// A publisher's history is an ordered sequence of immutable release
// bodies. The store hands bodies out as shared_ptr<const Bytes> so a
// request thread can diff or transmit a release while a publish is in
// flight — once published, a body never changes and never moves. Each
// release also carries a ContentKey (CRC-32C + length, the same pair the
// delta container embeds) so a device that only knows the checksum of the
// image it is running can be located in the history.
//
// Thread-safe: publishes take an exclusive lock, lookups a shared one.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/types.hpp"

namespace ipd {

/// Index of a release within a VersionStore (0 = oldest).
using ReleaseId = std::uint32_t;

/// Content address of a release body: the (crc32c, length) pair a delta
/// container already carries for its endpoints.
struct ContentKey {
  std::uint32_t crc = 0;
  length_t length = 0;

  auto operator<=>(const ContentKey&) const = default;
};

class VersionStore {
 public:
  /// Append a release to the history; returns its id (== prior count).
  ReleaseId publish(Bytes body);

  std::size_t release_count() const noexcept;

  /// Immutable body of release `id`. Throws ValidationError on a bad id.
  std::shared_ptr<const Bytes> body(ReleaseId id) const;

  /// Content address of release `id`. Throws ValidationError on a bad id.
  ContentKey content_key(ReleaseId id) const;

  /// Most recent release with this content, if any — how a device that
  /// reports only its image checksum is mapped into the history.
  std::optional<ReleaseId> find(const ContentKey& key) const;

  /// Id of the newest release. Throws ValidationError when empty.
  ReleaseId latest() const;

 private:
  mutable std::shared_mutex mutex_;
  std::vector<std::shared_ptr<const Bytes>> bodies_;
  std::vector<ContentKey> keys_;
  std::map<ContentKey, ReleaseId> by_content_;  // latest id per content
};

}  // namespace ipd
