#include "server/version_store.hpp"

#include <string>

#include "core/checksum.hpp"

namespace ipd {

ReleaseId VersionStore::publish(Bytes body) {
  const ContentKey key{crc32c(body), body.size()};
  auto shared = std::make_shared<const Bytes>(std::move(body));
  WriterLock lock(mutex_);
  const ReleaseId id = static_cast<ReleaseId>(bodies_.size());
  bodies_.push_back(std::move(shared));
  keys_.push_back(key);
  if (by_content_.contains(key)) count_duplicate_publish();
  by_content_[key] = id;  // newer release wins the content address
  return id;
}

std::size_t VersionStore::release_count() const {
  ReaderLock lock(mutex_);
  return bodies_.size();
}

std::shared_ptr<const Bytes> VersionStore::body(ReleaseId id) const {
  ReaderLock lock(mutex_);
  if (id >= bodies_.size()) {
    throw ValidationError("version store: no release " + std::to_string(id));
  }
  return bodies_[id];
}

ContentKey VersionStore::content_key(ReleaseId id) const {
  ReaderLock lock(mutex_);
  if (id >= keys_.size()) {
    throw ValidationError("version store: no release " + std::to_string(id));
  }
  return keys_[id];
}

std::optional<ReleaseId> VersionStore::find(const ContentKey& key) const {
  ReaderLock lock(mutex_);
  const auto it = by_content_.find(key);
  if (it == by_content_.end()) return std::nullopt;
  return it->second;
}

ReleaseId VersionStore::latest() const {
  ReaderLock lock(mutex_);
  if (bodies_.empty()) {
    throw ValidationError("version store: empty history has no latest");
  }
  return static_cast<ReleaseId>(bodies_.size() - 1);
}

}  // namespace ipd
