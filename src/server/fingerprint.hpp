// Stable fingerprint of a delta-production configuration.
//
// The service's cache key is (from release, to release, *how the delta is
// built*): two deltas over the same endpoints are interchangeable only if
// every pipeline knob matches — differ, codeword format, cycle-breaking
// policy, secondary compression, all of it. Rather than store the whole
// PipelineOptions in every key, we fold each field into a 64-bit FNV-1a
// fingerprint. The fingerprint is stable across processes (no pointer or
// layout dependence), so it can later key an on-disk or remote cache too.
#pragma once

#include <cstdint>

#include "ipdelta.hpp"

namespace ipd {

/// Fold every semantically relevant field of `options` into a 64-bit
/// FNV-1a hash. Equal options always produce equal fingerprints; distinct
/// options collide only with ordinary 64-bit-hash probability.
std::uint64_t fingerprint_pipeline(const PipelineOptions& options) noexcept;

}  // namespace ipd
