// Compatibility forwarder: ThreadPool moved to core/ so the delta and
// inplace layers can fan work out onto the same pool the service runs
// builds on. Existing includes of "server/thread_pool.hpp" keep working.
#pragma once

#include "core/thread_pool.hpp"
