#include "server/fingerprint.hpp"

namespace ipd {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t fingerprint_pipeline(const PipelineOptions& options) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(options.differ));
  mix(h, options.differ_options.seed_length);
  mix(h, options.differ_options.min_match);
  mix(h, options.differ_options.max_chain);
  mix(h, options.differ_options.table_bits);
  mix(h, options.differ_options.block_size);
  mix(h, static_cast<std::uint64_t>(options.convert.policy));
  // convert.format is NOT mixed: every build overwrites it from
  // PipelineOptions::format (mixed below), so it never changes bytes.
  mix(h, options.convert.coalesce_adds ? 1 : 0);
  mix(h, options.convert.exact.max_vertices);
  mix(h, options.convert.exact.max_search_nodes);
  mix(h, options.compress_payload ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(options.format.codeword));
  mix(h, static_cast<std::uint64_t>(options.format.offsets));
  // Segmentation knobs change the emitted bytes, so they fingerprint;
  // `parallelism` deliberately does not — output is byte-identical at
  // every width, so caches stay valid across it.
  mix(h, options.min_parallel_input);
  mix(h, options.parallel_segment_bytes);
  return h;
}

}  // namespace ipd
