#include "server/metrics.hpp"

#include <cstdio>

namespace ipd {

namespace {

std::uint64_t load(const std::atomic<std::uint64_t>& a) noexcept {
  return a.load(std::memory_order_relaxed);
}

}  // namespace

std::string ServiceMetrics::snapshot() const {
  const std::uint64_t n_builds = load(builds);
  const double mean_build_ms =
      n_builds == 0 ? 0.0
                    : static_cast<double>(load(build_ns)) / 1e6 /
                          static_cast<double>(n_builds);
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "requests:          %llu\n"
      "cache hits:        %llu (%.1f%% of lookups)\n"
      "cache misses:      %llu\n"
      "coalesced waits:   %llu\n"
      "builds:            %llu (mean %.2f ms)\n"
      "bytes served:      %llu\n"
      "served as delta:   %llu direct, %llu chain, %llu full image\n"
      "cache evictions:   %llu (+%llu oversized)\n"
      "verify rejects:    %llu\n"
      "verify warnings:   %llu\n"
      "net sessions:      %llu (+%llu rejected)\n"
      "net frames sent:   %llu (%llu bytes)\n"
      "net resumes:       %llu\n"
      "net retries:       %llu\n"
      "net errors sent:   %llu\n",
      static_cast<unsigned long long>(load(requests)),
      static_cast<unsigned long long>(load(cache_hits)), 100.0 * hit_rate(),
      static_cast<unsigned long long>(load(cache_misses)),
      static_cast<unsigned long long>(load(coalesced_waits)),
      static_cast<unsigned long long>(n_builds), mean_build_ms,
      static_cast<unsigned long long>(load(bytes_served)),
      static_cast<unsigned long long>(load(deltas_served)),
      static_cast<unsigned long long>(load(chains_served)),
      static_cast<unsigned long long>(load(full_images_served)),
      static_cast<unsigned long long>(load(evictions)),
      static_cast<unsigned long long>(load(rejected_inserts)),
      static_cast<unsigned long long>(load(verify_rejects)),
      static_cast<unsigned long long>(load(verify_warns)),
      static_cast<unsigned long long>(load(net_sessions)),
      static_cast<unsigned long long>(load(net_rejected)),
      static_cast<unsigned long long>(load(net_frames_sent)),
      static_cast<unsigned long long>(load(net_bytes_sent)),
      static_cast<unsigned long long>(load(net_resumes)),
      static_cast<unsigned long long>(load(net_retries)),
      static_cast<unsigned long long>(load(net_errors)));
  return buf;
}

void ServiceMetrics::reset() noexcept {
  for (std::atomic<std::uint64_t>* a :
       {&requests, &cache_hits, &cache_misses, &coalesced_waits, &builds,
        &build_ns, &bytes_served, &deltas_served, &chains_served,
        &full_images_served, &evictions, &rejected_inserts, &verify_rejects,
        &verify_warns, &net_sessions,
        &net_rejected, &net_bytes_sent, &net_frames_sent, &net_resumes,
        &net_retries, &net_errors}) {
    a->store(0, std::memory_order_relaxed);
  }
}

double ServiceMetrics::hit_rate() const noexcept {
  const std::uint64_t hits = load(cache_hits);
  const std::uint64_t lookups = hits + load(cache_misses);
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

}  // namespace ipd
