#include "server/metrics.hpp"

#include <cstdio>

namespace ipd {

namespace {

std::uint64_t load(const std::atomic<std::uint64_t>& a) noexcept {
  return a.load(std::memory_order_relaxed);
}

}  // namespace

std::string ServiceMetrics::snapshot() const {
  std::string out;
  char label[40];
  char line[128];
  for_each([&](const char* name, std::uint64_t value) {
    std::snprintf(label, sizeof label, "%s:", name);
    std::snprintf(line, sizeof line, "%-19s %llu\n", label,
                  static_cast<unsigned long long>(value));
    out += line;
  });
  // Derived summaries. Worded so no counter name appears as a substring —
  // the exactly-once invariant on the generated lines above must hold.
  const std::uint64_t n_builds = load(builds);
  const double mean_build_ms =
      n_builds == 0 ? 0.0
                    : static_cast<double>(load(build_ns)) / 1e6 /
                          static_cast<double>(n_builds);
  std::snprintf(line, sizeof line,
                "hit rate:           %.1f%% of lookups\n"
                "mean build:         %.2f ms\n",
                100.0 * hit_rate(), mean_build_ms);
  out += line;
  return out;
}

void ServiceMetrics::reset() noexcept {
#define IPD_RESET_COUNTER(name) name.store(0, std::memory_order_relaxed);
  IPD_SERVICE_COUNTERS(IPD_RESET_COUNTER)
#undef IPD_RESET_COUNTER
}

double ServiceMetrics::hit_rate() const noexcept {
  const std::uint64_t hits = load(cache_hits);
  const std::uint64_t lookups = hits + load(cache_misses);
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

}  // namespace ipd
