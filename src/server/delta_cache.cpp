#include "server/delta_cache.hpp"

#include <bit>

#include "obs/event_ring.hpp"
#include "verify/verifier.hpp"

namespace ipd {

DeltaCache::DeltaCache(std::uint64_t byte_budget, std::size_t shards,
                       ServiceMetrics* metrics, const Verifier* gate)
    : budget_(byte_budget), metrics_(metrics), gate_(gate) {
  if (byte_budget == 0) {
    throw ValidationError("delta cache: byte budget must be positive");
  }
  const std::size_t count = std::bit_ceil(shards == 0 ? 1 : shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Ceil-divide so the slices always sum to >= the requested budget.
  shard_budget_ = (budget_ + count - 1) / count;
}

DeltaCache::Shard& DeltaCache::shard_for(const DeltaKey& key) noexcept {
  return *shards_[DeltaKeyHash{}(key) & (shards_.size() - 1)];
}

std::shared_ptr<const Bytes> DeltaCache::get(const DeltaKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const Bytes> value;
  {
    MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      value = it->second->value;
    }
  }
  if (metrics_ != nullptr) {
    (value ? metrics_->cache_hits : metrics_->cache_misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

bool DeltaCache::put(const DeltaKey& key,
                     std::shared_ptr<const Bytes> value) {
  const std::uint64_t size = value->size();
  Shard& shard = shard_for(key);
  if (gate_ != nullptr) {
    // Verify outside the shard lock — the check is O(n log n) in the
    // command count and must not stall unrelated lookups.
    const Report report = gate_->check(ByteView(*value));
    if (!report.ok()) {
      {
        MutexLock lock(shard.mutex);
        ++shard.rejected_unsafe;
      }
      if (metrics_ != nullptr) {
        metrics_->verify_rejects.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    if (metrics_ != nullptr && report.warning_count() > 0) {
      metrics_->verify_warns.fetch_add(report.warning_count(),
                                       std::memory_order_relaxed);
    }
  }
  std::uint64_t evicted = 0;
  bool rejected = false;
  {
    MutexLock lock(shard.mutex);
    if (size > shard_budget_) {
      ++shard.rejected;
      rejected = true;
    } else {
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.bytes -= it->second->value->size();
        it->second->value = std::move(value);
        shard.bytes += size;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        shard.lru.push_front(Entry{key, std::move(value)});
        shard.index.emplace(key, shard.lru.begin());
        shard.bytes += size;
      }
      while (shard.bytes > shard_budget_) {
        const Entry& victim = shard.lru.back();
        shard.bytes -= victim.value->size();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++shard.evictions;
        ++evicted;
      }
    }
  }
  if (metrics_ != nullptr) {
    if (evicted > 0) {
      metrics_->evictions.fetch_add(evicted, std::memory_order_relaxed);
    }
    if (rejected) {
      metrics_->rejected_inserts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (evicted > 0) {
    obs::global_events().push(obs::EventType::kCacheEvict, evicted, size);
  }
  return !rejected;
}

DeltaCache::Stats DeltaCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total.bytes_held += shard->bytes;
    total.entries += shard->lru.size();
    total.evictions += shard->evictions;
    total.rejected += shard->rejected;
    total.rejected_unsafe += shard->rejected_unsafe;
  }
  return total;
}

}  // namespace ipd
