// Service observability: one cache-friendly block of atomic counters
// plus the latency/size histograms served next to them.
//
// Every hot-path event increments exactly one relaxed atomic — no locks,
// no strings, nothing that can stall a request thread. Relaxed ordering
// is sufficient: counters are statistics, not synchronization; readers
// (benches, the CLI, tests) only need eventually-consistent totals, and
// every counter is monotone except the bytes_cached gauge.
//
// The counter and histogram inventories are single X-macro lists:
// member declarations, for_each(), snapshot() and reset() are all
// generated from the same line, so a metric cannot be added to one and
// silently missed by another (the drift that once threatened
// snapshot()/reset()). tests/test_server.cpp and the stats exposition
// iterate the same lists.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace ipd {

// Every ServiceMetrics counter exactly once: X(name).
#define IPD_SERVICE_COUNTERS(X)                                         \
  X(requests)           /* serve() calls                             */ \
  X(cache_hits)         /* delta found in cache                      */ \
  X(cache_misses)       /* lookup found nothing                      */ \
  X(coalesced_waits)    /* rode another build                        */ \
  X(builds)             /* Pipeline::build_inplace runs              */ \
  X(build_ns)           /* wall time inside builds                   */ \
  X(bytes_served)       /* artifact bytes returned                   */ \
  X(deltas_served)      /* direct-delta responses                    */ \
  X(chains_served)      /* per-hop chain responses                   */ \
  X(full_images_served) /* raw-image responses                       */ \
  X(evictions)          /* cache entries dropped                     */ \
  X(rejected_inserts)   /* entry > shard budget                      */ \
  X(verify_rejects)     /* unsafe deltas refused (src/verify/)       */ \
  X(verify_warns)       /* warning findings seen                     */ \
  X(net_sessions)       /* connections served                        */ \
  X(net_rejected)       /* over connection limit                     */ \
  X(net_bytes_sent)     /* wire bytes written                        */ \
  X(net_frames_sent)    /* frames written                            */ \
  X(net_resumes)        /* RESUME transfers honored                  */ \
  X(net_retries)        /* client attempts after a fault             */ \
  X(net_errors)         /* ERROR frames sent                         */ \
  X(net_shed)           /* load-shed refusals (ERROR{kShed} replies) */

struct ServiceMetrics {
#define IPD_DECLARE_COUNTER(name) std::atomic<std::uint64_t> name{0};
  IPD_SERVICE_COUNTERS(IPD_DECLARE_COUNTER)
#undef IPD_DECLARE_COUNTER

  /// Visit every counter as (name, current value) — the one iteration
  /// the snapshot, the Prometheus exposition and the drift tests share.
  template <typename Fn>
  void for_each(Fn&& fn) const {
#define IPD_VISIT_COUNTER(name) \
  fn(#name, name.load(std::memory_order_relaxed));
    IPD_SERVICE_COUNTERS(IPD_VISIT_COUNTER)
#undef IPD_VISIT_COUNTER
  }

  /// Multi-line human-readable snapshot (benches, CLI `serve`): one
  /// generated line per counter — names every counter exactly once
  /// (asserted by tests/test_server.cpp) — plus derived summary lines.
  std::string snapshot() const;

  /// Zero every counter (bench warm-up/measure phase boundary).
  void reset() noexcept;

  /// cache_hits / (cache_hits + cache_misses), 0 when no lookups yet.
  double hit_rate() const noexcept;
};

// Every ServiceHistograms member exactly once: X(name). Values are
// nanoseconds for *_ns, counts/bytes otherwise.
#define IPD_SERVICE_HISTOGRAMS(X)                                        \
  X(serve_ns)        /* serve() wall time per request                 */ \
  X(build_latency_ns) /* Pipeline::build_inplace wall time per build  */ \
  X(artifact_bytes)  /* response payload bytes per request            */ \
  X(transfer_ns)     /* wire transfer wall time per artifact          */ \
  X(transfer_frames) /* frames sent per artifact transfer             */ \
  X(diff_fanout)     /* diff segments per build (1 == serial)         */ \
  X(crwi_fanout)     /* CRWI discovery chunks per build (1 == serial) */ \
  X(net_queue_depth) /* queued outbound bytes per connection, sampled */

/// The latency/size distributions recorded alongside ServiceMetrics.
/// Same discipline as the counters: relaxed atomics only, generated
/// iteration, reset at phase boundaries.
struct ServiceHistograms {
#define IPD_DECLARE_HISTOGRAM(name) obs::Histogram name;
  IPD_SERVICE_HISTOGRAMS(IPD_DECLARE_HISTOGRAM)
#undef IPD_DECLARE_HISTOGRAM

  template <typename Fn>
  void for_each(Fn&& fn) const {
#define IPD_VISIT_HISTOGRAM(name) fn(#name, name);
    IPD_SERVICE_HISTOGRAMS(IPD_VISIT_HISTOGRAM)
#undef IPD_VISIT_HISTOGRAM
  }

  void reset() noexcept {
#define IPD_RESET_HISTOGRAM(name) name.reset();
    IPD_SERVICE_HISTOGRAMS(IPD_RESET_HISTOGRAM)
#undef IPD_RESET_HISTOGRAM
  }
};

}  // namespace ipd
