// Service observability: one cache-friendly block of atomic counters.
//
// Every hot-path event increments exactly one relaxed atomic — no locks,
// no strings, nothing that can stall a request thread. Relaxed ordering
// is sufficient: counters are statistics, not synchronization; readers
// (benches, the CLI, tests) only need eventually-consistent totals, and
// every counter is monotone except the bytes_cached gauge.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ipd {

struct ServiceMetrics {
  std::atomic<std::uint64_t> requests{0};        ///< serve() calls
  std::atomic<std::uint64_t> cache_hits{0};      ///< delta found in cache
  std::atomic<std::uint64_t> cache_misses{0};    ///< lookup found nothing
  std::atomic<std::uint64_t> coalesced_waits{0}; ///< rode another build
  std::atomic<std::uint64_t> builds{0};          ///< create_inplace_delta runs
  std::atomic<std::uint64_t> build_ns{0};        ///< wall time inside builds
  std::atomic<std::uint64_t> bytes_served{0};    ///< artifact bytes returned
  std::atomic<std::uint64_t> deltas_served{0};   ///< direct-delta responses
  std::atomic<std::uint64_t> chains_served{0};   ///< per-hop chain responses
  std::atomic<std::uint64_t> full_images_served{0};
  std::atomic<std::uint64_t> evictions{0};       ///< cache entries dropped
  std::atomic<std::uint64_t> rejected_inserts{0};///< entry > shard budget

  // Static safety verification (src/verify/) at the trust boundaries.
  std::atomic<std::uint64_t> verify_rejects{0};  ///< unsafe deltas refused
  std::atomic<std::uint64_t> verify_warns{0};    ///< warning findings seen

  // Wire transport (src/net/ DeltaServer / OtaClient) counters.
  std::atomic<std::uint64_t> net_sessions{0};     ///< connections served
  std::atomic<std::uint64_t> net_rejected{0};     ///< over connection limit
  std::atomic<std::uint64_t> net_bytes_sent{0};   ///< wire bytes written
  std::atomic<std::uint64_t> net_frames_sent{0};  ///< frames written
  std::atomic<std::uint64_t> net_resumes{0};      ///< RESUME transfers honored
  std::atomic<std::uint64_t> net_retries{0};      ///< client attempts after a fault
  std::atomic<std::uint64_t> net_errors{0};       ///< ERROR frames sent

  /// Multi-line human-readable snapshot (benches, CLI `serve`). Names
  /// every counter exactly once (asserted by tests/test_server.cpp).
  std::string snapshot() const;

  /// Zero every counter (bench warm-up/measure phase boundary).
  void reset() noexcept;

  /// cache_hits / (cache_hits + cache_misses), 0 when no lookups yet.
  double hit_rate() const noexcept;
};

}  // namespace ipd
