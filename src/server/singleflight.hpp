// Request coalescing ("singleflight"): when N threads miss the cache on
// the same key simultaneously, exactly one runs the build and the other
// N-1 wait for its result instead of burning N-1 redundant differencer
// runs. This is the guard that makes a release-day thundering herd — a
// whole fleet asking for the same new hop at once — cost one build.
//
// The leader's exception, if any, propagates to every waiter; the flight
// is always cleared (before the promise resolves) so a later request can
// retry. Callers that re-check their cache inside `build` therefore get
// at-most-once builds per key even across flight generations.
#pragma once

#include <future>
#include <unordered_map>

#include "core/sync.hpp"

namespace ipd {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class Singleflight {
 public:
  /// If no call for `key` is in flight, run `build()` (as the leader) and
  /// hand its result to every thread that joins meanwhile. Otherwise
  /// block until the in-flight leader finishes and return its result.
  /// `was_leader`, when non-null, reports which role this call played.
  template <typename Fn>
  Value run(const Key& key, Fn&& build, bool* was_leader = nullptr) {
    std::promise<Value> promise;
    std::shared_future<Value> flight;
    bool leader = false;
    {
      MutexLock lock(mutex_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        flight = it->second;
      } else {
        flight = promise.get_future().share();
        inflight_.emplace(key, flight);
        leader = true;
      }
    }
    if (was_leader != nullptr) *was_leader = leader;
    if (!leader) {
      return flight.get();  // rethrows the leader's exception, if any
    }
    try {
      Value value = build();
      finish(key);
      promise.set_value(value);
      return value;
    } catch (...) {
      finish(key);
      promise.set_exception(std::current_exception());
      throw;
    }
  }

  /// Flights currently in progress (tests / introspection).
  std::size_t inflight() {
    MutexLock lock(mutex_);
    return inflight_.size();
  }

 private:
  void finish(const Key& key) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    inflight_.erase(key);
  }

  Mutex mutex_{"Singleflight"};
  std::unordered_map<Key, std::shared_future<Value>, Hash> inflight_
      GUARDED_BY(mutex_);
};

}  // namespace ipd
