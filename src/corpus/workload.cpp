#include "corpus/workload.hpp"

#include <cstdio>

namespace ipd {

std::vector<VersionPair> standard_corpus(const CorpusOptions& options) {
  std::vector<VersionPair> pairs;
  Rng rng(options.seed);

  for (std::size_t pkg = 0; pkg < options.packages; ++pkg) {
    const FileProfile profile =
        pkg % 2 == 0 ? FileProfile::kText : FileProfile::kBinary;
    const length_t base_size =
        rng.range(options.min_file_size, options.max_file_size);
    Bytes current = generate_file(rng, base_size, profile);

    for (std::size_t rel = 1; rel < options.releases_per_package; ++rel) {
      const std::size_t edits = std::max<std::size_t>(
          1, options.edits_per_64k * (current.size() >> 16) +
                 options.edits_per_64k / 2);
      Bytes next = mutate(current, rng, edits, options.mutation_model);

      char name[80];
      std::snprintf(name, sizeof name, "pkg%02u-%s/v%u->v%u",
                    static_cast<unsigned>(pkg), profile_name(profile),
                    static_cast<unsigned>(rel - 1),
                    static_cast<unsigned>(rel));
      pairs.push_back(VersionPair{name, profile, std::move(current),
                                  Bytes(next)});
      current = std::move(next);
    }
  }
  return pairs;
}

std::vector<VersionPair> small_corpus(std::uint64_t seed) {
  CorpusOptions options;
  options.seed = seed;
  options.packages = 4;
  options.releases_per_package = 3;
  options.min_file_size = 4 << 10;
  options.max_file_size = 32 << 10;
  return standard_corpus(options);
}

}  // namespace ipd
