#include "corpus/mutation.hpp"

#include <algorithm>

namespace ipd {
namespace {

Bytes random_payload(std::uint64_t seed, length_t length) {
  Rng rng(seed);
  Bytes out(static_cast<std::size_t>(length));
  // Mildly structured bytes (runs + printable bias) compress and match
  // more like real inserted code/data than uniform noise would.
  std::size_t i = 0;
  while (i < out.size()) {
    if (rng.chance(0.3)) {
      const std::size_t run =
          std::min<std::size_t>(out.size() - i, rng.range(2, 24));
      const std::uint8_t b = static_cast<std::uint8_t>(rng.below(256));
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(i), run, b);
      i += run;
    } else {
      out[i++] = static_cast<std::uint8_t>(0x20 + rng.below(95));
    }
  }
  return out;
}

}  // namespace

const char* mutation_name(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kInsert: return "insert";
    case MutationKind::kDelete: return "delete";
    case MutationKind::kReplace: return "replace";
    case MutationKind::kMoveBlock: return "move";
    case MutationKind::kDuplicateBlock: return "duplicate";
    case MutationKind::kByteTweak: return "tweak";
  }
  return "?";
}

Mutation random_mutation(Rng& rng, length_t file_size,
                         const MutationModel& model) {
  const double weights[] = {model.insert_weight,    model.delete_weight,
                            model.replace_weight,   model.move_weight,
                            model.duplicate_weight, model.tweak_weight};
  double total = 0;
  for (const double w : weights) total += w;
  double pick = rng.uniform() * total;
  std::size_t kind_index = 0;
  for (; kind_index + 1 < std::size(weights); ++kind_index) {
    if (pick < weights[kind_index]) break;
    pick -= weights[kind_index];
  }

  Mutation m;
  m.kind = static_cast<MutationKind>(kind_index);
  const length_t cap = std::max<length_t>(
      1, std::min<length_t>(
             model.max_edit_bytes,
             static_cast<length_t>(static_cast<double>(file_size) *
                                   model.max_edit_fraction)));
  m.length = std::min<length_t>(
      cap, rng.power_law_length(std::max<length_t>(1, cap / model.length_scale)) *
               model.length_scale);
  m.offset = file_size == 0 ? 0 : rng.below(file_size);
  m.second_offset = file_size == 0 ? 0 : rng.below(file_size);
  m.payload_seed = rng.next();
  if (m.kind == MutationKind::kByteTweak) {
    m.length = rng.range(1, 16);  // tweaks touch a handful of bytes
  }
  return m;
}

Bytes apply_mutation(ByteView input, const Mutation& m) {
  Bytes out(input.begin(), input.end());
  if (out.empty() && m.kind != MutationKind::kInsert) {
    return out;
  }
  const auto clamp_range = [&](offset_t offset, length_t length,
                               std::size_t size) {
    const std::size_t begin = std::min<std::size_t>(offset, size);
    const std::size_t len = std::min<std::size_t>(length, size - begin);
    return std::pair<std::size_t, std::size_t>(begin, len);
  };

  switch (m.kind) {
    case MutationKind::kInsert: {
      const std::size_t at = std::min<std::size_t>(m.offset, out.size());
      const Bytes payload = random_payload(m.payload_seed, m.length);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                 payload.begin(), payload.end());
      break;
    }
    case MutationKind::kDelete: {
      const auto [begin, len] = clamp_range(m.offset, m.length, out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(begin),
                out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      break;
    }
    case MutationKind::kReplace: {
      const auto [begin, len] = clamp_range(m.offset, m.length, out.size());
      const Bytes payload = random_payload(m.payload_seed, len);
      std::copy(payload.begin(), payload.end(),
                out.begin() + static_cast<std::ptrdiff_t>(begin));
      break;
    }
    case MutationKind::kMoveBlock: {
      const auto [begin, len] = clamp_range(m.offset, m.length, out.size());
      if (len == 0) break;
      Bytes block(out.begin() + static_cast<std::ptrdiff_t>(begin),
                  out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(begin),
                out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      const std::size_t at = std::min<std::size_t>(m.second_offset, out.size());
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), block.begin(),
                 block.end());
      break;
    }
    case MutationKind::kDuplicateBlock: {
      const auto [begin, len] = clamp_range(m.offset, m.length, out.size());
      if (len == 0) break;
      const Bytes block(out.begin() + static_cast<std::ptrdiff_t>(begin),
                        out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      const std::size_t at = std::min<std::size_t>(m.second_offset, out.size());
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), block.begin(),
                 block.end());
      break;
    }
    case MutationKind::kByteTweak: {
      Rng rng(m.payload_seed);
      for (length_t i = 0; i < m.length && !out.empty(); ++i) {
        const std::size_t at = rng.below(out.size());
        out[at] = static_cast<std::uint8_t>(out[at] ^ (1 + rng.below(255)));
      }
      break;
    }
  }
  return out;
}

Bytes mutate(ByteView input, Rng& rng, std::size_t count,
             const MutationModel& model) {
  Bytes current(input.begin(), input.end());
  for (std::size_t i = 0; i < count; ++i) {
    const Mutation m = random_mutation(rng, current.size(), model);
    current = apply_mutation(current, m);
  }
  return current;
}

}  // namespace ipd
