// Base-file generation: synthetic "software" with realistic redundancy.
//
// Three profiles, matching the paper's corpus mix plus its database
// reference [13]:
//  * kText    — token/line structure like source code: a finite
//    vocabulary recombined into lines, heavy internal repetition;
//  * kBinary  — section structure like executables: code-ish entropy
//    blocks, string tables, zero padding, and repeated record arrays;
//  * kRecords — fixed-size keyed records, the aligned workload of
//    differential-file systems (Severance & Lohman [13]); block-aligned
//    differencing is actually competitive here, unlike on the other two.
#pragma once

#include <string>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "corpus/mutation.hpp"

namespace ipd {

enum class FileProfile : std::uint8_t {
  kText,
  kBinary,
  kRecords,
};

/// Record size used by FileProfile::kRecords.
inline constexpr std::size_t kRecordSize = 128;

/// Record-aligned mutation model: edits replace whole records in place —
/// the churn shape of [13]-style database files. Use with kRecords for
/// aligned version pairs.
MutationModel record_aligned_model();

const char* profile_name(FileProfile p) noexcept;

/// Generate a base file of roughly `size` bytes (exact for kBinary,
/// within a line of kText).
Bytes generate_file(Rng& rng, length_t size, FileProfile profile);

}  // namespace ipd
