// Named workloads shared by the benches and integration tests: synthetic
// "software distributions" — packages evolving through releases — that
// stand in for the paper's GNU/BSD corpus (DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"

namespace ipd {

/// One (reference, version) pair of the corpus: consecutive releases of a
/// synthetic package.
struct VersionPair {
  std::string name;  ///< e.g. "pkg03-text/v2->v3"
  FileProfile profile = FileProfile::kText;
  Bytes reference;
  Bytes version;
};

struct CorpusOptions {
  std::uint64_t seed = 0x1998'0625;  // PODC '98
  std::size_t packages = 12;
  std::size_t releases_per_package = 4;  ///< yields releases-1 pairs each
  length_t min_file_size = 16 << 10;
  length_t max_file_size = 256 << 10;
  /// Mutations applied per release, scaled by file size (per 64 KiB).
  std::size_t edits_per_64k = 12;
  MutationModel mutation_model;
};

/// The standard corpus: `packages` synthetic packages (half text, half
/// binary), each evolved through `releases_per_package` releases; every
/// consecutive release pair becomes a VersionPair. Deterministic in seed.
std::vector<VersionPair> standard_corpus(const CorpusOptions& options = {});

/// A small corpus for unit/integration tests (fast to generate).
std::vector<VersionPair> small_corpus(std::uint64_t seed = 7);

}  // namespace ipd
