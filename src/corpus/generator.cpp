#include "corpus/generator.hpp"

#include <algorithm>
#include <vector>

namespace ipd {
namespace {

Bytes generate_text(Rng& rng, length_t size) {
  // A vocabulary of short tokens recombined into lines gives the
  // self-similarity of source code: later revisions share most lines.
  constexpr std::size_t kVocab = 256;
  std::vector<Bytes> tokens;
  tokens.reserve(kVocab);
  for (std::size_t i = 0; i < kVocab; ++i) {
    Bytes tok(rng.range(3, 12));
    for (auto& b : tok) {
      b = static_cast<std::uint8_t>('a' + rng.below(26));
    }
    tokens.push_back(std::move(tok));
  }

  Bytes out;
  out.reserve(static_cast<std::size_t>(size) + 128);
  while (out.size() < size) {
    const std::size_t words = rng.range(2, 12);
    const std::size_t indent = rng.below(3) * 4;
    out.insert(out.end(), indent, ' ');
    for (std::size_t w = 0; w < words; ++w) {
      // Zipf-ish pick: favour low token ids.
      std::size_t id = rng.below(kVocab);
      id = std::min(id, rng.below(kVocab));
      const Bytes& tok = tokens[id];
      out.insert(out.end(), tok.begin(), tok.end());
      out.push_back(w + 1 == words ? '\n' : ' ');
    }
  }
  out.resize(static_cast<std::size_t>(size));
  return out;
}

Bytes generate_binary(Rng& rng, length_t size) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(size));
  while (out.size() < size) {
    const std::size_t remaining = static_cast<std::size_t>(size) - out.size();
    const std::size_t section =
        std::min(remaining, static_cast<std::size_t>(rng.range(256, 8192)));
    switch (rng.below(4)) {
      case 0: {  // code-like: random bytes with repeated short motifs
        Bytes motif(rng.range(4, 16));
        rng.fill(motif);
        std::size_t i = 0;
        while (i < section) {
          if (rng.chance(0.4)) {
            const std::size_t n = std::min(section - i, motif.size());
            out.insert(out.end(), motif.begin(),
                       motif.begin() + static_cast<std::ptrdiff_t>(n));
            i += n;
          } else {
            out.push_back(static_cast<std::uint8_t>(rng.below(256)));
            ++i;
          }
        }
        break;
      }
      case 1: {  // string-table-like: printable runs separated by NULs
        std::size_t i = 0;
        while (i < section) {
          const std::size_t n = std::min(section - i,
                                         static_cast<std::size_t>(
                                             rng.range(4, 24)));
          for (std::size_t k = 0; k + 1 < n; ++k) {
            out.push_back(static_cast<std::uint8_t>(0x20 + rng.below(95)));
          }
          out.push_back(0);
          i += n;
        }
        break;
      }
      case 2: {  // record array: fixed-size records with counters
        const std::size_t rec = rng.range(8, 32);
        Bytes proto(rec);
        rng.fill(proto);
        std::uint32_t counter = static_cast<std::uint32_t>(rng.next());
        std::size_t i = 0;
        while (i + rec <= section) {
          Bytes r = proto;
          r[0] = static_cast<std::uint8_t>(counter);
          r[1] = static_cast<std::uint8_t>(counter >> 8);
          ++counter;
          out.insert(out.end(), r.begin(), r.end());
          i += rec;
        }
        out.insert(out.end(), section - i, 0);
        break;
      }
      default: {  // zero padding
        out.insert(out.end(), section, 0);
        break;
      }
    }
  }
  out.resize(static_cast<std::size_t>(size));
  return out;
}

Bytes generate_records(Rng& rng, length_t size) {
  // Fixed-size keyed records: 8-byte ascending key, a type byte, fields
  // drawn from a small per-file alphabet (so records resemble each
  // other), and padding.
  Bytes field_alphabet(64);
  rng.fill(field_alphabet);

  Bytes out;
  out.reserve(static_cast<std::size_t>(size));
  std::uint64_t key = rng.next() & 0xFFFFFF;
  while (out.size() + kRecordSize <= size) {
    Bytes record(kRecordSize, 0);
    for (int i = 0; i < 8; ++i) {
      record[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(key >> (8 * i));
    }
    ++key;
    record[8] = static_cast<std::uint8_t>(rng.below(4));  // record type
    for (std::size_t i = 9; i + 8 < kRecordSize; i += 4) {
      record[i] = field_alphabet[rng.below(field_alphabet.size())];
      record[i + 1] = field_alphabet[rng.below(8)];  // hot fields repeat
    }
    out.insert(out.end(), record.begin(), record.end());
  }
  out.resize(static_cast<std::size_t>(size));  // tail padding
  return out;
}

}  // namespace

const char* profile_name(FileProfile p) noexcept {
  switch (p) {
    case FileProfile::kText: return "text";
    case FileProfile::kBinary: return "binary";
    case FileProfile::kRecords: return "records";
  }
  return "?";
}

MutationModel record_aligned_model() {
  MutationModel model;
  // Length-preserving edits only, so record alignment survives releases.
  model.insert_weight = 0;
  model.delete_weight = 0;
  model.move_weight = 0;
  model.duplicate_weight = 0;
  model.replace_weight = 4;
  model.tweak_weight = 1;
  model.length_scale = kRecordSize;
  model.max_edit_bytes = 4 * kRecordSize;
  return model;
}

Bytes generate_file(Rng& rng, length_t size, FileProfile profile) {
  if (size == 0) return {};
  switch (profile) {
    case FileProfile::kText: return generate_text(rng, size);
    case FileProfile::kBinary: return generate_binary(rng, size);
    case FileProfile::kRecords: return generate_records(rng, size);
  }
  return {};
}

}  // namespace ipd
