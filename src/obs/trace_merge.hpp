// Merge per-process Chrome traces into one cross-process timeline.
//
// Each process exports its own trace_events_json() file (client, server,
// ...). merge_traces() folds N such documents into a single Chrome
// trace: every input gets its own pid lane (with a process_name metadata
// record naming it), and spans that carry the same args.trace id across
// DIFFERENT inputs are joined with flow events ("s" at the earliest
// span of the first process that saw the trace, "f" into the earliest
// span of each later process) — the arrow from a client's net_request
// span to the server's serve/build spans for the same update attempt.
//
// Timestamps are NOT rebased: each process's ts values stay on its own
// monotonic anchor. Lanes are therefore individually accurate but not
// mutually aligned; the flow arrows, keyed on trace identity rather
// than time, are what join the timelines.
//
// Inputs must be well-formed trace documents ({"traceEvents":[...]});
// malformed JSON throws FormatError, which is how `ipdelta trace
// --merge` doubles as a validator.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace ipd::obs {

struct NamedTrace {
  std::string name;  ///< lane label, e.g. "client" or "server"
  std::string json;  ///< a trace_events_json()-style document
};

struct MergeStats {
  std::size_t processes = 0;
  std::size_t events = 0;        ///< span/meta events in the output
  std::size_t flow_events = 0;   ///< "s"/"f" records emitted
  std::size_t traces_joined = 0; ///< distinct trace ids spanning >1 input
};

/// Merge the inputs into one Chrome trace document. Throws FormatError
/// on malformed input JSON or a missing traceEvents array.
std::string merge_traces(const std::vector<NamedTrace>& inputs,
                         MergeStats* stats = nullptr);

}  // namespace ipd::obs
