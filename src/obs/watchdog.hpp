// Stall watchdog: turn invisible hangs into events with a trace id.
//
// PR 7's worst bug was a bit-flipped frame length prefix that wedged
// both peers mid-read — no error, no counter, just silence. The
// watchdog makes that failure mode observable: a transfer (or any
// long-running stage) registers with a deadline, reports progress as
// bytes move, and deregisters when done. Any task whose last progress
// is older than its deadline is flagged: a kStall event is pushed into
// the global ring carrying the task's trace id and last-progress
// offset, and the task shows up in stalled() until it moves again.
//
// Checking is explicit (check_now, deterministic for tests) or a
// background thread (start/stop) for long-lived servers. Flagging is
// edge-triggered: one event per stall episode, re-armed by progress.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_context.hpp"

namespace ipd::obs {

struct StalledTask {
  std::uint64_t id = 0;
  std::string label;
  TraceContext trace;
  std::uint64_t offset = 0;         ///< last reported progress offset
  std::uint64_t stalled_for_ns = 0; ///< now - last progress
};

class StallWatchdog {
 public:
  StallWatchdog() = default;
  ~StallWatchdog();
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Register a task; returns its id (never 0). `deadline_ns` is the
  /// maximum silence tolerated between progress reports.
  std::uint64_t register_task(std::string label, const TraceContext& trace,
                              std::uint64_t deadline_ns);
  /// Report progress (monotone offset: bytes sent, bytes applied, ...).
  void progress(std::uint64_t id, std::uint64_t offset) noexcept;
  void deregister(std::uint64_t id) noexcept;

  /// Flag every task stalled as of `now` (obs::now_ns() when 0); pushes
  /// one kStall event per newly-stalled task. Returns how many tasks
  /// are currently stalled (flagged before or now and still silent).
  std::size_t check_now(std::uint64_t now = 0);

  /// Currently-stalled tasks (as of the last check).
  std::vector<StalledTask> stalled() const;

  /// Tasks currently registered (stalled or not).
  std::size_t watched() const;

  /// kStall events pushed over the watchdog's lifetime.
  std::uint64_t stalls_flagged() const noexcept;

  /// Background checker at `interval_ms`; idempotent. stop_thread() is
  /// implied by destruction.
  void start_thread(int interval_ms);
  void stop_thread();

 private:
  struct Impl;
  Impl& impl() const;
  mutable Impl* impl_ = nullptr;
};

/// The process-wide watchdog transfers register with by default.
StallWatchdog& global_watchdog() noexcept;

/// RAII registration against the global watchdog (or none when
/// deadline_ns == 0, making call sites unconditional).
class WatchdogGuard {
 public:
  WatchdogGuard(std::string label, const TraceContext& trace,
                std::uint64_t deadline_ns)
      : id_(deadline_ns == 0 ? 0
                             : global_watchdog().register_task(
                                   std::move(label), trace, deadline_ns)) {}
  ~WatchdogGuard() {
    if (id_ != 0) global_watchdog().deregister(id_);
  }
  WatchdogGuard(const WatchdogGuard&) = delete;
  WatchdogGuard& operator=(const WatchdogGuard&) = delete;

  void progress(std::uint64_t offset) noexcept {
    if (id_ != 0) global_watchdog().progress(id_, offset);
  }

 private:
  std::uint64_t id_;
};

}  // namespace ipd::obs
