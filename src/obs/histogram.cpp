#include "obs/histogram.hpp"

#include <bit>
#include <cstdio>

namespace ipd::obs {

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

std::uint64_t Histogram::bucket_low(std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::bucket_high(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket == kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  // Bucket totals are the source of truth: under concurrent record()
  // the count/sum pair may lag the buckets (or vice versa), so rank
  // against what the buckets actually hold.
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // Nearest-rank target, 0-based, then walk the cumulative counts.
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Linear interpolation across the bucket's value span, by the
      // rank's position among the bucket's entries.
      const double lo = static_cast<double>(Histogram::bucket_low(i));
      const double hi = static_cast<double>(Histogram::bucket_high(i));
      const double within =
          in_bucket == 1
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      return lo + (hi - lo) * within;
    }
    seen += in_bucket;
  }
  return static_cast<double>(Histogram::bucket_high(kHistogramBuckets - 1));
}

std::string HistogramSnapshot::latency_line() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "p50 %9.1fus  p95 %9.1fus  p99 %9.1fus",
                quantile(0.50) / 1e3, quantile(0.95) / 1e3,
                quantile(0.99) / 1e3);
  return buf;
}

}  // namespace ipd::obs
