// Lock-free log-bucketed latency/size histogram.
//
// The layout is fixed: 64 buckets, where bucket k holds every value v
// with bit_width(v) == k — i.e. bucket 0 is exactly {0} and bucket k
// (k >= 1) spans [2^(k-1), 2^k). A recorded value touches exactly one
// relaxed atomic bucket plus the count/sum pair, so record() is safe
// from any number of threads and never stalls a request path; the
// counters are statistics, not synchronization.
//
// Quantiles are answered from a HistogramSnapshot (a plain copy of the
// buckets) by nearest-rank walk with linear interpolation inside the
// winning bucket. Because both the estimate and the true sample lie in
// the same power-of-two bucket, the relative error is bounded by 2x for
// any nonzero input — tight enough to separate a 100 us p99 from a 1 ms
// one, which is what the latency tables exist to show (tested against a
// sorted-vector oracle in tests/test_obs.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ipd::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

/// Plain (non-atomic) copy of a histogram's state: mergeable, copyable,
/// and the thing quantiles are computed from. Merging is commutative and
/// associative, so per-thread histograms combine deterministically in
/// any order (bucket counts are integers; no float accumulation).
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void merge(const HistogramSnapshot& other) noexcept;

  /// Value at quantile q in [0, 1] (0.5 = median), 0 when empty.
  /// Nearest-rank into the bucket array, linearly interpolated across
  /// the bucket's value range; relative error bounded by 2x.
  double quantile(double q) const noexcept;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// "p50 420.1us  p95 1300.0us  p99 3870.5us" — treats recorded values
  /// as nanoseconds. One line for bench tables and the serve ticker.
  std::string latency_line() const;
};

/// The live, thread-safe recorder. Not copyable or movable (atomics);
/// share by reference and snapshot() to read.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept;

  /// Zero every bucket (bench warm-up/measure phase boundary). Not
  /// atomic with respect to concurrent record() — callers quiesce first,
  /// exactly as ServiceMetrics::reset() already requires.
  void reset() noexcept;

  /// Bucket index for a value: bit_width, i.e. 0 -> 0, [2^(k-1), 2^k)
  /// -> k, clamped into the fixed layout.
  static std::size_t bucket_of(std::uint64_t value) noexcept;

  /// Inclusive [lowest, highest] value a bucket spans.
  static std::uint64_t bucket_low(std::size_t bucket) noexcept;
  static std::uint64_t bucket_high(std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace ipd::obs
