#include "obs/stats.hpp"

#include <cstdio>

namespace ipd::obs {

namespace {

void append_value(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

void PrometheusRenderer::type_line(std::string_view name, const char* type) {
  if (last_typed_ == name) return;
  last_typed_ = name;
  out_ += "# TYPE ";
  out_ += prefix_;
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusRenderer::counter(std::string_view name, std::uint64_t value) {
  type_line(name, "counter");
  out_ += prefix_;
  out_ += name;
  out_ += ' ';
  append_value(out_, value);
  out_ += '\n';
}

void PrometheusRenderer::counter(std::string_view name,
                                 std::string_view label_key,
                                 std::string_view label_value,
                                 std::uint64_t value) {
  type_line(name, "counter");
  out_ += prefix_;
  out_ += name;
  out_ += '{';
  out_ += label_key;
  out_ += "=\"";
  out_ += label_value;
  out_ += "\"} ";
  append_value(out_, value);
  out_ += '\n';
}

void PrometheusRenderer::gauge(std::string_view name, std::uint64_t value) {
  type_line(name, "gauge");
  out_ += prefix_;
  out_ += name;
  out_ += ' ';
  append_value(out_, value);
  out_ += '\n';
}

void PrometheusRenderer::histogram(std::string_view name,
                                   const HistogramSnapshot& snap) {
  type_line(name, "summary");
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
  char buf[64];
  for (const auto& quantile : kQuantiles) {
    out_ += prefix_;
    out_ += name;
    std::snprintf(buf, sizeof buf, "{quantile=\"%s\"} %.0f\n", quantile.label,
                  snap.quantile(quantile.q));
    out_ += buf;
  }
  out_ += prefix_;
  out_ += name;
  out_ += "_sum ";
  append_value(out_, snap.sum);
  out_ += '\n';
  out_ += prefix_;
  out_ += name;
  out_ += "_count ";
  append_value(out_, snap.count);
  out_ += '\n';
}

}  // namespace ipd::obs
