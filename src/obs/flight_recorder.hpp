// Per-session flight recorder: bounded black-box forensics for one
// connection or one update attempt.
//
// Counters say how often, the global event ring says what happened last
// process-wide — but when ONE device's update fails, the operator wants
// that device's timeline: the spans it ran, the events it hit, in
// order, with its trace id. A FlightRecorder is that buffer. The owner
// (an OTA update attempt, a server session) creates one, installs it
// with a FlightScope, and every obs::Span and global_events().push() on
// that thread is mirrored in automatically — independent of the global
// tracing switch, because the failure that wants this data never
// announces itself in advance. The buffer is a fixed ring: a
// long-running healthy session costs a few KiB and keeps only its tail.
//
// On a failure path (verify reject, journal poison, refused resume,
// transfer abort, corrupt frame) the owner calls dump_flight(): the
// recorder is rendered to text + JSON keyed by its trace_id, appended
// to a bounded in-process dump registry (flight_dumps(), for tests and
// the CLI), and — when IPDELTA_FLIGHT_DIR or set_flight_dump_dir()
// names a directory — written to flight-<trace>-<n>.{txt,json} there.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_ring.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace ipd::obs {

class FlightRecorder {
 public:
  /// Ring capacity: entries beyond this overwrite the oldest.
  static constexpr std::size_t kMaxEntries = 192;
  static constexpr std::size_t kDetailBytes = 64;

  explicit FlightRecorder(std::string label, TraceContext ctx = {});

  void set_context(const TraceContext& ctx) noexcept { ctx_ = ctx; }
  const TraceContext& context() const noexcept { return ctx_; }
  const std::string& label() const noexcept { return label_; }

  /// Hooks; allocation-free and called from Span::~Span /
  /// EventRing::push on the thread the FlightScope is installed on.
  void note_span(Stage stage, std::uint64_t start_ns, std::uint64_t dur_ns,
                 std::uint64_t bytes) noexcept;
  void note_event(EventType type, std::uint64_t a, std::uint64_t b,
                  std::string_view detail) noexcept;
  /// Manual breadcrumb ("HELLO v2 acked", "resume at 8192", ...).
  void note(std::string_view text) noexcept;

  /// Entries recorded over the recorder's lifetime (>= still resident).
  std::uint64_t recorded() const noexcept { return total_; }

  /// Human-readable timeline, oldest resident entry first.
  std::string dump_text() const;
  /// JSON object: {"trace_id":..., "label":..., "reason":...,
  /// "entries":[...]}. `reason` names the failure path that dumped it.
  std::string dump_json(std::string_view reason) const;

 private:
  enum class Kind : std::uint8_t { kSpan, kEvent, kNote };
  struct Entry {
    Kind kind = Kind::kNote;
    std::uint8_t code = 0;  ///< Stage or EventType ordinal
    std::uint64_t ns = 0;
    std::uint64_t a = 0;  ///< span: dur_ns / event: a
    std::uint64_t b = 0;  ///< span: bytes  / event: b
    char detail[kDetailBytes] = {};
  };

  Entry& next_slot() noexcept;
  void render_entry(const Entry& e, std::string* out) const;

  std::string label_;
  TraceContext ctx_;
  std::vector<Entry> ring_;
  std::uint64_t total_ = 0;
};

/// RAII: install a recorder as this thread's active sink; nesting
/// restores the previous one. Span/event mirroring only happens on
/// threads with a scope open.
class FlightScope {
 public:
  explicit FlightScope(FlightRecorder& recorder) noexcept;
  ~FlightScope();
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

 private:
  FlightRecorder* saved_;
};

/// This thread's active recorder, or nullptr.
FlightRecorder* active_flight_recorder() noexcept;

/// One dumped flight record, as kept in the in-process registry.
struct FlightDump {
  std::string trace_id;  ///< 32 hex chars, or "" for an untraced session
  std::string label;
  std::string reason;
  std::string text;
  std::string json;
};

/// Render + persist a recorder because something failed. Appends to the
/// bounded in-process registry and (best effort, never throws) writes
/// the text+JSON pair into the configured dump directory.
void dump_flight(const FlightRecorder& recorder, std::string_view reason);

/// The dumps recorded so far, oldest first (bounded; oldest evicted).
std::vector<FlightDump> flight_dumps();
void clear_flight_dumps();

/// Directory for on-disk dumps; "" disables. The IPDELTA_FLIGHT_DIR
/// environment variable seeds this at first use.
void set_flight_dump_dir(std::string dir);

}  // namespace ipd::obs
