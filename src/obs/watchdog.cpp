#include "obs/watchdog.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "core/sync.hpp"
#include "obs/event_ring.hpp"
#include "obs/trace.hpp"

namespace ipd::obs {

struct StallWatchdog::Impl {
  struct Task {
    std::string label;
    TraceContext trace;
    std::uint64_t deadline_ns = 0;
    std::uint64_t last_progress_ns = 0;
    std::uint64_t offset = 0;
    bool flagged = false;
  };

  Mutex mutex{"StallWatchdog"};
  std::unordered_map<std::uint64_t, Task> tasks GUARDED_BY(mutex);
  std::uint64_t next_id GUARDED_BY(mutex) = 1;
  std::atomic<std::uint64_t> stalls{0};

  Mutex thread_mutex{"StallWatchdogThread"};
  ConditionVariable thread_cv;
  bool thread_stop GUARDED_BY(thread_mutex) = false;
  std::thread checker;  // guarded by start/stop call discipline
};

StallWatchdog::Impl& StallWatchdog::impl() const {
  // Lazily heap-allocated and only freed by the destructor: the global
  // watchdog is never destroyed, so tasks registered during static
  // teardown stay safe.
  if (impl_ == nullptr) impl_ = new Impl;
  return *impl_;
}

StallWatchdog::~StallWatchdog() {
  stop_thread();
  delete impl_;
}

std::uint64_t StallWatchdog::register_task(std::string label,
                                           const TraceContext& trace,
                                           std::uint64_t deadline_ns) {
  Impl& im = impl();
  const MutexLock lock(im.mutex);
  const std::uint64_t id = im.next_id++;
  Impl::Task task;
  task.label = std::move(label);
  task.trace = trace;
  task.deadline_ns = deadline_ns;
  task.last_progress_ns = now_ns();
  im.tasks.emplace(id, std::move(task));
  return id;
}

void StallWatchdog::progress(std::uint64_t id, std::uint64_t offset) noexcept {
  Impl& im = impl();
  const MutexLock lock(im.mutex);
  const auto it = im.tasks.find(id);
  if (it == im.tasks.end()) return;
  it->second.offset = offset;
  it->second.last_progress_ns = now_ns();
  it->second.flagged = false;  // moving again: re-arm the edge trigger
}

void StallWatchdog::deregister(std::uint64_t id) noexcept {
  Impl& im = impl();
  const MutexLock lock(im.mutex);
  im.tasks.erase(id);
}

std::size_t StallWatchdog::check_now(std::uint64_t now) {
  if (now == 0) now = now_ns();
  Impl& im = impl();
  // Collect under the lock, push events after: EventRing::push mirrors
  // into flight recorders and must not run under the watchdog mutex.
  std::vector<StalledTask> fresh;
  std::size_t stalled_count = 0;
  {
    const MutexLock lock(im.mutex);
    for (auto& [id, task] : im.tasks) {
      const std::uint64_t silent =
          now > task.last_progress_ns ? now - task.last_progress_ns : 0;
      if (silent <= task.deadline_ns) continue;
      ++stalled_count;
      if (task.flagged) continue;
      task.flagged = true;
      StalledTask s;
      s.id = id;
      s.label = task.label;
      s.trace = task.trace;
      s.offset = task.offset;
      s.stalled_for_ns = silent;
      fresh.push_back(std::move(s));
    }
  }
  for (const StalledTask& s : fresh) {
    im.stalls.fetch_add(1, std::memory_order_relaxed);
    std::string detail = s.label;
    if (s.trace.valid()) detail += " " + s.trace.trace_id_hex();
    global_events().push(EventType::kStall, s.offset, s.stalled_for_ns,
                         detail);
  }
  return stalled_count;
}

std::vector<StalledTask> StallWatchdog::stalled() const {
  Impl& im = impl();
  const std::uint64_t now = now_ns();
  const MutexLock lock(im.mutex);
  std::vector<StalledTask> out;
  for (const auto& [id, task] : im.tasks) {
    if (!task.flagged) continue;
    StalledTask s;
    s.id = id;
    s.label = task.label;
    s.trace = task.trace;
    s.offset = task.offset;
    s.stalled_for_ns =
        now > task.last_progress_ns ? now - task.last_progress_ns : 0;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t StallWatchdog::watched() const {
  Impl& im = impl();
  const MutexLock lock(im.mutex);
  return im.tasks.size();
}

std::uint64_t StallWatchdog::stalls_flagged() const noexcept {
  return impl().stalls.load(std::memory_order_relaxed);
}

void StallWatchdog::start_thread(int interval_ms) {
  Impl& im = impl();
  {
    const MutexLock lock(im.thread_mutex);
    if (im.checker.joinable()) return;  // already running
    im.thread_stop = false;
  }
  im.checker = std::thread([this, interval_ms] {
    Impl& i = impl();
    UniqueLock lock(i.thread_mutex);
    for (;;) {
      i.thread_cv.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (i.thread_stop) return;
      lock.unlock();
      check_now();
      lock.lock();
    }
  });
}

void StallWatchdog::stop_thread() {
  if (impl_ == nullptr) return;
  Impl& im = *impl_;
  {
    const MutexLock lock(im.thread_mutex);
    if (!im.checker.joinable()) return;
    im.thread_stop = true;
  }
  im.thread_cv.notify_all();
  im.checker.join();
  im.checker = std::thread();
}

StallWatchdog& global_watchdog() noexcept {
  static StallWatchdog* w = new StallWatchdog;
  return *w;
}

}  // namespace ipd::obs
