// Prometheus-style text exposition for counters, gauges and histograms.
//
// The renderer is deliberately dumb: callers iterate their own metric
// sources (ServiceMetrics::for_each, ServiceHistograms::for_each, the
// stage totals) and feed name/value pairs in; the renderer only owns
// the format. That keeps obs/ free of dependencies on the subsystems it
// observes, and makes "every registered metric appears in the output"
// checkable by re-running the same iteration over the rendered text —
// which is exactly what the CI smoke gate does.
//
// Output shape (prefix "ipdelta_"):
//
//   # TYPE ipdelta_requests counter
//   ipdelta_requests 1234
//   # TYPE ipdelta_serve_ns summary
//   ipdelta_serve_ns{quantile="0.5"} 417
//   ipdelta_serve_ns{quantile="0.9"} 1234
//   ipdelta_serve_ns{quantile="0.99"} 56789
//   ipdelta_serve_ns_sum 123456
//   ipdelta_serve_ns_count 789
//   # TYPE ipdelta_stage_ns counter
//   ipdelta_stage_ns{stage="diff"} 42
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace ipd::obs {

class PrometheusRenderer {
 public:
  explicit PrometheusRenderer(std::string prefix = "ipdelta_")
      : prefix_(std::move(prefix)) {}

  void counter(std::string_view name, std::uint64_t value);
  /// Labeled counter series; the # TYPE line is emitted once per name.
  void counter(std::string_view name, std::string_view label_key,
               std::string_view label_value, std::uint64_t value);
  void gauge(std::string_view name, std::uint64_t value);
  /// Summary with p50/p90/p99 quantiles plus _sum and _count.
  void histogram(std::string_view name, const HistogramSnapshot& snap);

  const std::string& str() const noexcept { return out_; }

 private:
  void type_line(std::string_view name, const char* type);

  std::string prefix_;
  std::string out_;
  std::string last_typed_;  ///< dedup # TYPE for labeled series
};

}  // namespace ipd::obs
