// Distributed trace identity: the request context that crosses the wire.
//
// A TraceContext names one update attempt end to end: a 128-bit trace_id
// shared by every process that touches the request, a 64-bit span_id for
// the current hop, and the parent span that caused it. The OTA client
// (or the campaign driver) mints a fresh context per update attempt; the
// wire layer carries it in an optional frame-header extension
// (net/frame.hpp); the server adopts it for the session and re-scopes it
// onto the pipeline worker that builds the artifact — so a client span,
// the server's serve span and the build spans all carry the same
// trace_id and can be joined into one merged Chrome trace
// (obs/trace_merge.hpp).
//
// Propagation inside a process is a thread-local stack (TraceScope):
// obs::Span reads current_trace() at destruction time, so every stage
// span recorded under a scope is tagged without the pipeline code
// knowing traces exist. Crossing a thread boundary (e.g. a build
// submitted to a pool) is explicit: capture current_trace() into the
// task and open a TraceScope inside it.
#pragma once

#include <cstdint>
#include <string>

namespace ipd::obs {

struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< 128-bit trace id, high half
  std::uint64_t trace_lo = 0;  ///< 128-bit trace id, low half
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = true;  ///< false: propagate identity, record nothing

  /// A context is valid when its trace id is nonzero; the default
  /// (all-zero) context means "no trace" everywhere.
  bool valid() const noexcept { return (trace_hi | trace_lo) != 0; }

  /// 32 lowercase hex chars (the W3C trace-id spelling).
  std::string trace_id_hex() const;
  /// 16 lowercase hex chars.
  std::string span_id_hex() const;

  friend bool operator==(const TraceContext& x,
                         const TraceContext& y) noexcept {
    return x.trace_hi == y.trace_hi && x.trace_lo == y.trace_lo &&
           x.span_id == y.span_id && x.parent_span_id == y.parent_span_id &&
           x.sampled == y.sampled;
  }
};

/// Mint a fresh root context: new 128-bit trace id, new span id, no
/// parent. Ids mix a process-global counter, the clock and `seed_hint`
/// through splitmix64 — unique within and across processes for tracing
/// purposes (not cryptographic).
TraceContext mint_trace(std::uint64_t seed_hint = 0);

/// A child context: same trace id, fresh span id, parent = the given
/// context's span. Propagating an invalid context yields invalid.
TraceContext child_of(const TraceContext& parent);

/// The innermost TraceScope's context on this thread (invalid context
/// when no scope is open).
const TraceContext& current_trace() noexcept;

/// RAII: install `ctx` as this thread's current trace context for the
/// scope's lifetime (nesting restores the previous context).
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace ipd::obs
