#include "obs/event_ring.hpp"

#include <cstdio>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace ipd::obs {

const char* event_type_name(EventType type) noexcept {
  switch (type) {
#define IPD_OBS_EVENT_NAME(id, name) \
  case EventType::id:                \
    return name;
    IPD_OBS_EVENTS(IPD_OBS_EVENT_NAME)
#undef IPD_OBS_EVENT_NAME
  }
  return "?";
}

void EventRing::push(EventType type, std::uint64_t a, std::uint64_t b,
                     std::string_view detail) noexcept {
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[ticket % kSlots];
  // Seqlock write: odd = in progress. Payload words are atomics, so a
  // racing reader observes values, never a data race; the seq check
  // tells it whether they were consistent.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.ns.store(now_ns(), std::memory_order_relaxed);
  slot.type.store(static_cast<std::uint32_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t pos = w * 8 + i;
      if (pos < detail.size()) {
        word |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(detail[pos]))
                << (8 * i);
      }
    }
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket, std::memory_order_release);
  // Mirror the event into the active per-connection flight recorder (if
  // any) so a failure dump shows the events of *this* session inline
  // with its spans, not just the global ring's tail.
  if (this == &global_events()) {
    if (FlightRecorder* fr = active_flight_recorder()) {
      fr->note_event(type, a, b, detail);
    }
  }
}

std::vector<Event> EventRing::recent(std::size_t max) const {
  const std::uint64_t newest = cursor_.load(std::memory_order_acquire);
  if (newest == 0) return {};
  if (max > kSlots) max = kSlots;
  const std::uint64_t oldest =
      newest > max ? newest - max + 1 : std::uint64_t{1};

  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(newest - oldest + 1));
  for (std::uint64_t ticket = oldest; ticket <= newest; ++ticket) {
    const Slot& slot = slots_[ticket % kSlots];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != 2 * ticket) continue;  // lapped or mid-write: drop
    Event e;
    e.seq = ticket;
    e.ns = slot.ns.load(std::memory_order_relaxed);
    e.type = static_cast<EventType>(
        slot.type.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    char text[kDetailBytes + 1];
    for (std::size_t w = 0; w < kDetailWords; ++w) {
      const std::uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < 8; ++i) {
        text[w * 8 + i] = static_cast<char>((word >> (8 * i)) & 0xFF);
      }
    }
    text[kDetailBytes] = '\0';
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while copying: drop
    e.detail = text;  // stops at the first NUL
    out.push_back(std::move(e));
  }
  return out;
}

std::string EventRing::dump(std::size_t max) const {
  std::string out;
  char line[160];
  for (const Event& e : recent(max)) {
    std::snprintf(line, sizeof line,
                  "  +%10.3fs #%llu %-14s a=%llu b=%llu %s\n",
                  static_cast<double>(e.ns) / 1e9,
                  static_cast<unsigned long long>(e.seq),
                  event_type_name(e.type),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b), e.detail.c_str());
    out += line;
  }
  return out;
}

EventRing& global_events() noexcept {
  static EventRing* ring = new EventRing;
  return *ring;
}

}  // namespace ipd::obs
