// Bounded lock-free ring of the last N notable events.
//
// Counters say how often something happens; the event ring says what
// happened *last* — the flight recorder a crashed serve or a refused
// update gets dumped from. Writers are hot paths (verify rejects, cache
// evictions, net errors), so push() takes a slot ticket with one relaxed
// fetch_add and then writes only atomics: every slot is a tiny seqlock
// whose payload words are themselves relaxed atomics, which keeps
// concurrent readers race-free (and TSan-clean) without any mutex.
// A reader that catches a slot mid-write (odd sequence, or the sequence
// moved while copying) simply drops that slot; with 256 slots and rare
// events a torn read requires the ring to lap itself mid-copy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ipd::obs {

// Every event type exactly once: X(enum_id, wire_name).
#define IPD_OBS_EVENTS(X)                \
  X(kVerifyReject, "verify_reject")      \
  X(kCacheEvict, "cache_evict")          \
  X(kNetError, "net_error")              \
  X(kJournalPoison, "journal_poison")    \
  X(kNetRetry, "net_retry")              \
  X(kNetResume, "net_resume")            \
  X(kConnRejected, "conn_rejected")      \
  X(kStall, "stall")

enum class EventType : std::uint8_t {
#define IPD_OBS_EVENT_ENUM(id, name) id,
  IPD_OBS_EVENTS(IPD_OBS_EVENT_ENUM)
#undef IPD_OBS_EVENT_ENUM
};

inline constexpr std::size_t kEventTypeCount = []() {
  std::size_t n = 0;
#define IPD_OBS_EVENT_COUNT(id, name) ++n;
  IPD_OBS_EVENTS(IPD_OBS_EVENT_COUNT)
#undef IPD_OBS_EVENT_COUNT
  return n;
}();

const char* event_type_name(EventType type) noexcept;

/// One decoded event. `a` and `b` are type-specific numeric arguments
/// (an attempt number, a byte count, an error code); `detail` is a
/// short free-text tail, truncated to the slot's fixed capacity.
struct Event {
  std::uint64_t seq = 0;  ///< 1-based global push order
  std::uint64_t ns = 0;   ///< obs::now_ns() at push
  EventType type = EventType::kNetError;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

class EventRing {
 public:
  static constexpr std::size_t kSlots = 256;
  static constexpr std::size_t kDetailBytes = 48;

  void push(EventType type, std::uint64_t a = 0, std::uint64_t b = 0,
            std::string_view detail = {}) noexcept;

  /// Events pushed over the ring's lifetime (>= what is still held).
  std::uint64_t pushed() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// The most recent events still resident, oldest first, at most
  /// `max`. Slots caught mid-write are skipped.
  std::vector<Event> recent(std::size_t max = kSlots) const;

  /// Human-readable dump of recent(max), one line per event:
  /// "  +12.345s verify_reject a=1 b=0 hop 3 -> 4". Empty string when
  /// nothing has been recorded.
  std::string dump(std::size_t max = 32) const;

 private:
  static constexpr std::size_t kDetailWords = kDetailBytes / 8;

  struct Slot {
    /// 2*ticket while stable, 2*ticket+1 while being written, 0 empty.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint32_t> type{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> detail[kDetailWords] = {};
  };

  std::array<Slot, kSlots> slots_{};
  std::atomic<std::uint64_t> cursor_{0};
};

/// The process-wide ring every subsystem pushes into. Never destroyed,
/// so events survive into static teardown (the crash path that most
/// wants them).
EventRing& global_events() noexcept;

}  // namespace ipd::obs
