#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <vector>

#include "core/sync.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"

namespace ipd::obs {

namespace {

const char* const kStageNames[kStageCount] = {
#define IPD_OBS_STAGE_NAME(id, name) name,
    IPD_OBS_STAGES(IPD_OBS_STAGE_NAME)
#undef IPD_OBS_STAGE_NAME
};

struct GlobalTotals {
  std::atomic<std::uint64_t> ns[kStageCount] = {};
  std::atomic<std::uint64_t> bytes[kStageCount] = {};
  std::atomic<std::uint64_t> count[kStageCount] = {};
};

GlobalTotals& global_totals() noexcept {
  // Trivially destructible: safe for thread-local sink destructors that
  // flush during late thread teardown.
  static GlobalTotals totals;
  return totals;
}

std::atomic<bool> g_tracing{false};
std::atomic<std::uint32_t> g_trace_pid{1};

struct TraceEvent {
  Stage stage;
  std::uint32_t tid;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t bytes;
  TraceContext trace;  ///< invalid when recorded outside a TraceScope
};

/// Captured events. Heap-allocated and never destroyed so that threads
/// flushing during process teardown cannot touch a dead vector.
struct TraceCollector {
  Mutex mutex{"TraceCollector"};
  std::vector<TraceEvent> events GUARDED_BY(mutex);
  bool overflowed GUARDED_BY(mutex) = false;
};

TraceCollector& collector() {
  static TraceCollector* c = new TraceCollector;
  return *c;
}

/// Hard cap on captured events: tracing a long-running serve must not
/// grow without bound. Past the cap new events are dropped and the
/// export notes the overflow.
constexpr std::size_t kMaxTraceEvents = 1u << 20;

std::string hex_span(std::uint64_t v) {
  TraceContext t;
  t.span_id = v;
  return t.span_id_hex();
}

std::uint32_t next_thread_id() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Per-thread accumulation: plain memory, no contention. Flushes to the
/// global atomics when the outermost span ends (bounded staleness: one
/// in-flight pipeline) and on thread exit.
struct ThreadSink {
  StageCell cells[kStageCount] = {};
  std::vector<TraceEvent> events;
  int depth = 0;
  bool dirty = false;
  std::uint32_t tid = next_thread_id();

  ~ThreadSink() { flush(); }

  void flush() noexcept {
    if (dirty) {
      GlobalTotals& g = global_totals();
      for (std::size_t i = 0; i < kStageCount; ++i) {
        if (cells[i].count == 0) continue;
        g.ns[i].fetch_add(cells[i].ns, std::memory_order_relaxed);
        g.bytes[i].fetch_add(cells[i].bytes, std::memory_order_relaxed);
        g.count[i].fetch_add(cells[i].count, std::memory_order_relaxed);
        cells[i] = StageCell{};
      }
      dirty = false;
    }
    if (!events.empty()) {
      TraceCollector& c = collector();
      const MutexLock lock(c.mutex);
      for (TraceEvent& e : events) {
        if (c.events.size() >= kMaxTraceEvents) {
          c.overflowed = true;
          break;
        }
        c.events.push_back(e);
      }
      events.clear();
    }
  }
};

ThreadSink& sink() noexcept {
  thread_local ThreadSink s;
  return s;
}

}  // namespace

const char* stage_name(Stage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

StageTotals stage_totals() noexcept {
  const GlobalTotals& g = global_totals();
  StageTotals totals;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    totals.cells[i].ns = g.ns[i].load(std::memory_order_relaxed);
    totals.cells[i].bytes = g.bytes[i].load(std::memory_order_relaxed);
    totals.cells[i].count = g.count[i].load(std::memory_order_relaxed);
  }
  return totals;
}

void reset_stage_totals() noexcept {
  GlobalTotals& g = global_totals();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    g.ns[i].store(0, std::memory_order_relaxed);
    g.bytes[i].store(0, std::memory_order_relaxed);
    g.count[i].store(0, std::memory_order_relaxed);
  }
}

void flush_thread_stats() noexcept { sink().flush(); }

void set_tracing(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

void set_trace_pid(std::uint32_t pid) noexcept {
  g_trace_pid.store(pid, std::memory_order_relaxed);
}

std::uint32_t trace_pid() noexcept {
  return g_trace_pid.load(std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void clear_trace_events() {
  TraceCollector& c = collector();
  const MutexLock lock(c.mutex);
  c.events.clear();
  c.overflowed = false;
}

std::size_t trace_event_count() {
  TraceCollector& c = collector();
  const MutexLock lock(c.mutex);
  return c.events.size();
}

std::string trace_events_json() {
  flush_thread_stats();
  TraceCollector& c = collector();
  const MutexLock lock(c.mutex);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[384];
  const std::uint32_t pid = g_trace_pid.load(std::memory_order_relaxed);
  for (const TraceEvent& e : c.events) {
    if (!first) out += ',';
    first = false;
    if (e.trace.valid()) {
      std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"X\","
          "\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
          "\"args\":{\"bytes\":%llu,\"trace\":\"%s\",\"span\":\"%s\","
          "\"parent\":\"%s\"}}",
          stage_name(e.stage), pid, e.tid,
          static_cast<double>(e.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3,
          static_cast<unsigned long long>(e.bytes),
          e.trace.trace_id_hex().c_str(), e.trace.span_id_hex().c_str(),
          hex_span(e.trace.parent_span_id).c_str());
    } else {
      std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"X\","
          "\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
          "\"args\":{\"bytes\":%llu}}",
          stage_name(e.stage), pid, e.tid,
          static_cast<double>(e.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3,
          static_cast<unsigned long long>(e.bytes));
    }
    out += buf;
  }
  out += "]";
  if (c.overflowed) {
    out += ",\"otherData\":{\"truncated\":\"event cap reached\"}";
  }
  out += "}";
  return out;
}

Span::Span(Stage stage, std::uint64_t bytes) noexcept
    : stage_(stage), bytes_(bytes), start_ns_(now_ns()) {
  ++sink().depth;
}

Span::~Span() {
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end - start_ns_;
  ThreadSink& s = sink();
  StageCell& cell = s.cells[static_cast<std::size_t>(stage_)];
  cell.ns += dur;
  cell.bytes += bytes_;
  cell.count += 1;
  s.dirty = true;
  const TraceContext& ctx = current_trace();
  if (tracing_enabled() && (!ctx.valid() || ctx.sampled)) {
    s.events.push_back(
        TraceEvent{stage_, s.tid, start_ns_, dur, bytes_, ctx});
  }
  // The per-connection flight recorder is independent of the global
  // tracing switch: it is bounded, and the failure paths that dump it
  // must have data even when nobody enabled tracing beforehand.
  if (FlightRecorder* fr = active_flight_recorder()) {
    fr->note_span(stage_, start_ns_, dur, bytes_);
  }
  if (--s.depth == 0) s.flush();
}

}  // namespace ipd::obs
