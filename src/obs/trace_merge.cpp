#include "obs/trace_merge.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <variant>

namespace ipd::obs {

namespace {

// ---- minimal JSON --------------------------------------------------
// Just enough of a recursive-descent parser to read the trace documents
// this repo produces (and to reject anything malformed): objects,
// arrays, strings with the escapes we emit, numbers, true/false/null.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  const std::string& string() const { return std::get<std::string>(v); }
  double number() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (p_ != end_) throw FormatError("json: trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  char peek() {
    skip_ws();
    if (p_ == end_) throw FormatError("json: unexpected end of input");
    return *p_;
  }
  void expect(char c) {
    if (peek() != c) {
      throw FormatError(std::string("json: expected '") + c + "'");
    }
    ++p_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': return keyword("true", JsonValue{true});
      case 'f': return keyword("false", JsonValue{false});
      case 'n': return keyword("null", JsonValue{nullptr});
      default: return number();
    }
  }

  JsonValue keyword(const char* word, JsonValue result) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ == end_ || *p_ != *w) throw FormatError("json: bad literal");
    }
    return result;
  }

  JsonValue object() {
    expect('{');
    auto out = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++p_;
      return JsonValue{out};
    }
    for (;;) {
      if (peek() != '"') throw FormatError("json: object key must be string");
      std::string key = string();
      expect(':');
      (*out)[std::move(key)] = value();
      const char c = peek();
      ++p_;
      if (c == '}') return JsonValue{out};
      if (c != ',') throw FormatError("json: expected ',' or '}'");
    }
  }

  JsonValue array() {
    expect('[');
    auto out = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++p_;
      return JsonValue{out};
    }
    for (;;) {
      out->push_back(value());
      const char c = peek();
      ++p_;
      if (c == ']') return JsonValue{out};
      if (c != ',') throw FormatError("json: expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) break;
      const char esc = *p_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_) throw FormatError("json: bad \\u escape");
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw FormatError("json: bad \\u escape");
          }
          // The traces we merge only escape control characters; encode
          // the code point as UTF-8 without surrogate handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: throw FormatError("json: unknown escape");
      }
    }
    if (p_ == end_) throw FormatError("json: unterminated string");
    ++p_;  // closing quote
    return out;
  }

  JsonValue number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (start == p_) throw FormatError("json: bad value");
    return JsonValue{std::stod(std::string(start, p_))};
  }

  const char* p_;
  const char* end_;
};

// ---- serialization -------------------------------------------------

void append_escaped(std::string* out, const std::string& text) {
  *out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void append_number(std::string* out, double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  *out += buf;
}

void append_value(std::string* out, const JsonValue& v);

void append_object(std::string* out, const JsonObject& object) {
  *out += '{';
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) *out += ',';
    first = false;
    append_escaped(out, key);
    *out += ':';
    append_value(out, value);
  }
  *out += '}';
}

void append_value(std::string* out, const JsonValue& v) {
  if (v.is_object()) {
    append_object(out, v.object());
  } else if (v.is_array()) {
    *out += '[';
    bool first = true;
    for (const JsonValue& item : v.array()) {
      if (!first) *out += ',';
      first = false;
      append_value(out, item);
    }
    *out += ']';
  } else if (v.is_string()) {
    append_escaped(out, v.string());
  } else if (v.is_number()) {
    append_number(out, v.number());
  } else if (std::holds_alternative<bool>(v.v)) {
    *out += std::get<bool>(v.v) ? "true" : "false";
  } else {
    *out += "null";
  }
}

/// One span's join point: where a flow arrow attaches.
struct JoinPoint {
  std::size_t process = 0;
  double ts = 0;
  double tid = 0;
};

const JsonValue* find(const JsonObject& object, const char* key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace

std::string merge_traces(const std::vector<NamedTrace>& inputs,
                         MergeStats* stats) {
  MergeStats local;
  local.processes = inputs.size();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& record) {
    if (!first) out += ',';
    first = false;
    out += record;
  };

  // trace id -> earliest span per process that carries it.
  std::map<std::string, std::map<std::size_t, JoinPoint>> joins;

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::uint32_t pid = static_cast<std::uint32_t>(i + 1);
    const JsonValue doc = JsonParser(inputs[i].json).parse();
    if (!doc.is_object()) {
      throw FormatError("trace merge: input " + inputs[i].name +
                        " is not a JSON object");
    }
    const JsonValue* events = find(doc.object(), "traceEvents");
    if (events == nullptr || !events->is_array()) {
      throw FormatError("trace merge: input " + inputs[i].name +
                        " has no traceEvents array");
    }

    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                       std::to_string(pid) + ",\"args\":{\"name\":";
    append_escaped(&meta, inputs[i].name);
    meta += "}}";
    emit(meta);
    ++local.events;

    for (const JsonValue& event : events->array()) {
      if (!event.is_object()) {
        throw FormatError("trace merge: non-object trace event");
      }
      // Re-emit with this input's pid lane, preserving everything else.
      JsonObject relaned = event.object();
      relaned["pid"] = JsonValue{static_cast<double>(pid)};
      std::string record;
      append_object(&record, relaned);
      emit(record);
      ++local.events;

      const JsonValue* args = find(event.object(), "args");
      if (args == nullptr || !args->is_object()) continue;
      const JsonValue* trace = find(args->object(), "trace");
      if (trace == nullptr || !trace->is_string()) continue;
      const JsonValue* ts = find(event.object(), "ts");
      const JsonValue* tid = find(event.object(), "tid");
      JoinPoint point;
      point.process = i;
      point.ts = ts != nullptr && ts->is_number() ? ts->number() : 0;
      point.tid = tid != nullptr && tid->is_number() ? tid->number() : 0;
      auto& per_process = joins[trace->string()];
      const auto it = per_process.find(i);
      if (it == per_process.end() || point.ts < it->second.ts) {
        per_process[i] = point;
      }
    }
  }

  // Flow arrows: for every trace id seen by more than one process, start
  // at the earliest span of the first process and finish at the
  // earliest span of each later one.
  for (const auto& [trace_id, per_process] : joins) {
    if (per_process.size() < 2) continue;
    ++local.traces_joined;
    const JoinPoint& origin = per_process.begin()->second;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"request\",\"cat\":\"trace\",\"ph\":\"s\","
                  "\"id\":\"%s\",\"pid\":%zu,\"tid\":%.0f,\"ts\":%.3f}",
                  trace_id.c_str(), origin.process + 1, origin.tid,
                  origin.ts);
    emit(buf);
    ++local.flow_events;
    for (auto it = std::next(per_process.begin()); it != per_process.end();
         ++it) {
      const JoinPoint& target = it->second;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"request\",\"cat\":\"trace\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"id\":\"%s\",\"pid\":%zu,\"tid\":%.0f,"
                    "\"ts\":%.3f}",
                    trace_id.c_str(), target.process + 1, target.tid,
                    target.ts);
      emit(buf);
      ++local.flow_events;
    }
  }

  out += "]}";
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace ipd::obs
