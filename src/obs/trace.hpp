// Pipeline stage tracing: where the conversion/apply/serve time goes.
//
// Two consumers share one instrumentation point (the RAII Span):
//
//  * per-stage aggregates — every Span accumulates {ns, bytes, count}
//    into a thread-local sink; when the outermost span on a thread ends,
//    the sink flushes into a global table of relaxed atomics. Always on:
//    the cost is two steady_clock reads per (coarse) stage plus a few
//    thread-local adds, and a handful of atomic adds per top-level
//    operation. stage_totals() reads the table for the stats exposition.
//
//  * trace events — when tracing is enabled (off by default; runtime
//    flag, no rebuild), each Span additionally records a timestamped
//    begin/duration event, exported as Chrome trace-event JSON
//    (chrome://tracing, Perfetto, speedscope) by trace_events_json().
//
// Stage names are a closed enum: the exposition, the trace export and
// the tests all iterate the same X-macro, so a stage cannot exist in
// one and be missing from another.
#pragma once

#include <cstdint>
#include <string>

namespace ipd::obs {

// Every instrumented pipeline stage exactly once: X(enum_id, wire_name).
// Cycle breaking is split per policy (the exact and SCC policies run a
// separate pre-pass worth timing on its own); the constant/localmin
// policies break cycles inside the topological sort itself, so their
// cost is part of the topo_sort stage.
#define IPD_OBS_STAGES(X)                  \
  X(kDiff, "diff")                         \
  X(kDiffParallel, "diff.parallel")        \
  X(kCrwiGraph, "crwi_graph")              \
  X(kCrwiParallel, "crwi.parallel")        \
  X(kCycleBreakExact, "cycle_break_exact") \
  X(kCycleBreakScc, "cycle_break_scc")     \
  X(kTopoSort, "topo_sort")                \
  X(kConvertEmit, "convert_emit")          \
  X(kEncode, "encode")                     \
  X(kApplyScratch, "apply_scratch")        \
  X(kApplyInplace, "apply_inplace")        \
  X(kVerify, "verify")                     \
  X(kServe, "serve")                       \
  X(kNetTransfer, "net_transfer")          \
  X(kNetRequest, "net_request")

enum class Stage : std::uint8_t {
#define IPD_OBS_STAGE_ENUM(id, name) id,
  IPD_OBS_STAGES(IPD_OBS_STAGE_ENUM)
#undef IPD_OBS_STAGE_ENUM
};

inline constexpr std::size_t kStageCount = []() {
  std::size_t n = 0;
#define IPD_OBS_STAGE_COUNT(id, name) ++n;
  IPD_OBS_STAGES(IPD_OBS_STAGE_COUNT)
#undef IPD_OBS_STAGE_COUNT
  return n;
}();

const char* stage_name(Stage stage) noexcept;

/// Monotonic nanoseconds since a process-local anchor (first use).
std::uint64_t now_ns() noexcept;

// ---- aggregates -----------------------------------------------------

struct StageCell {
  std::uint64_t ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

struct StageTotals {
  StageCell cells[kStageCount];
  const StageCell& operator[](Stage s) const noexcept {
    return cells[static_cast<std::size_t>(s)];
  }
};

/// Snapshot of the global per-stage totals (flushed sinks only; a span
/// still open on another thread is invisible until its top-level span
/// ends or flush_thread_stats() runs there).
StageTotals stage_totals() noexcept;

/// Zero the global totals (bench phase boundaries, tests).
void reset_stage_totals() noexcept;

/// Push this thread's unflushed aggregates into the global table now.
void flush_thread_stats() noexcept;

// ---- trace events ---------------------------------------------------

/// Runtime switch for event capture; aggregates stay on regardless.
void set_tracing(bool on) noexcept;
bool tracing_enabled() noexcept;

/// Drop every captured event (also re-arms capture after the cap).
void clear_trace_events();

std::size_t trace_event_count();

/// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds)
/// of everything captured since clear_trace_events(). Load it in
/// chrome://tracing or Perfetto for a per-thread flamegraph. Spans
/// recorded under a TraceScope (obs/trace_context.hpp) carry
/// args.trace/args.span/args.parent hex ids, which is what
/// merge_traces() joins cross-process timelines on.
std::string trace_events_json();

/// The pid lane this process's events export under (default 1). Set a
/// distinct value per process when traces from several processes will
/// be merged; merge_traces() re-lanes by input file regardless, so this
/// mostly matters for single-file exports viewed directly.
void set_trace_pid(std::uint32_t pid) noexcept;
std::uint32_t trace_pid() noexcept;

// ---- the instrumentation point --------------------------------------

/// RAII stage timer. Cheap enough for every coarse pipeline stage;
/// intentionally not used per command. add_bytes() attributes a byte
/// volume to the stage (input size, artifact size — whatever the stage
/// naturally measures).
class Span {
 public:
  explicit Span(Stage stage, std::uint64_t bytes = 0) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void add_bytes(std::uint64_t n) noexcept { bytes_ += n; }

 private:
  Stage stage_;
  std::uint64_t bytes_;
  std::uint64_t start_ns_;
};

}  // namespace ipd::obs
