#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "core/sync.hpp"

namespace ipd::obs {

namespace {

thread_local FlightRecorder* t_active = nullptr;

/// Registry of dumped flights. Heap-allocated, never destroyed: dumps
/// often happen on failure paths racing process teardown.
struct DumpRegistry {
  Mutex mutex{"FlightDumps"};
  std::deque<FlightDump> dumps GUARDED_BY(mutex);
  std::uint64_t sequence GUARDED_BY(mutex) = 0;
  std::string dir GUARDED_BY(mutex);
  bool dir_initialized GUARDED_BY(mutex) = false;
};

constexpr std::size_t kMaxDumps = 32;

DumpRegistry& registry() {
  static DumpRegistry* r = new DumpRegistry;
  return *r;
}

void copy_detail(char (&dst)[FlightRecorder::kDetailBytes],
                 std::string_view src) noexcept {
  const std::size_t n =
      src.size() < sizeof dst - 1 ? src.size() : sizeof dst - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void json_escape_into(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Best-effort file write; a dump must never turn a failure path into a
/// second failure.
void write_best_effort(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace

FlightRecorder::FlightRecorder(std::string label, TraceContext ctx)
    : label_(std::move(label)), ctx_(ctx) {
  ring_.resize(kMaxEntries);
}

FlightRecorder::Entry& FlightRecorder::next_slot() noexcept {
  Entry& slot = ring_[static_cast<std::size_t>(total_ % kMaxEntries)];
  ++total_;
  return slot;
}

void FlightRecorder::note_span(Stage stage, std::uint64_t start_ns,
                               std::uint64_t dur_ns,
                               std::uint64_t bytes) noexcept {
  Entry& e = next_slot();
  e.kind = Kind::kSpan;
  e.code = static_cast<std::uint8_t>(stage);
  e.ns = start_ns;
  e.a = dur_ns;
  e.b = bytes;
  e.detail[0] = '\0';
}

void FlightRecorder::note_event(EventType type, std::uint64_t a,
                                std::uint64_t b,
                                std::string_view detail) noexcept {
  Entry& e = next_slot();
  e.kind = Kind::kEvent;
  e.code = static_cast<std::uint8_t>(type);
  e.ns = now_ns();
  e.a = a;
  e.b = b;
  copy_detail(e.detail, detail);
}

void FlightRecorder::note(std::string_view text) noexcept {
  Entry& e = next_slot();
  e.kind = Kind::kNote;
  e.code = 0;
  e.ns = now_ns();
  e.a = 0;
  e.b = 0;
  copy_detail(e.detail, text);
}

void FlightRecorder::render_entry(const Entry& e, std::string* out) const {
  char line[192];
  switch (e.kind) {
    case Kind::kSpan:
      std::snprintf(line, sizeof line,
                    "  +%10.3fs span  %-14s %.3f ms  %llu bytes\n",
                    static_cast<double>(e.ns) / 1e9,
                    stage_name(static_cast<Stage>(e.code)),
                    static_cast<double>(e.a) / 1e6,
                    static_cast<unsigned long long>(e.b));
      break;
    case Kind::kEvent:
      std::snprintf(line, sizeof line,
                    "  +%10.3fs event %-14s a=%llu b=%llu %s\n",
                    static_cast<double>(e.ns) / 1e9,
                    event_type_name(static_cast<EventType>(e.code)),
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b), e.detail);
      break;
    case Kind::kNote:
      std::snprintf(line, sizeof line, "  +%10.3fs note  %s\n",
                    static_cast<double>(e.ns) / 1e9, e.detail);
      break;
  }
  *out += line;
}

std::string FlightRecorder::dump_text() const {
  std::string out = "flight " + label_;
  if (ctx_.valid()) out += "  trace " + ctx_.trace_id_hex();
  out += "  (" + std::to_string(total_) + " entries";
  if (total_ > kMaxEntries) {
    out += ", oldest " + std::to_string(total_ - kMaxEntries) + " dropped";
  }
  out += ")\n";
  const std::uint64_t resident =
      total_ < kMaxEntries ? total_ : std::uint64_t{kMaxEntries};
  for (std::uint64_t i = 0; i < resident; ++i) {
    const std::uint64_t index =
        total_ <= kMaxEntries ? i : (total_ + i) % kMaxEntries;
    render_entry(ring_[static_cast<std::size_t>(index)], &out);
  }
  return out;
}

std::string FlightRecorder::dump_json(std::string_view reason) const {
  std::string out = "{\"trace_id\":\"";
  if (ctx_.valid()) out += ctx_.trace_id_hex();
  out += "\",\"span_id\":\"";
  if (ctx_.valid()) out += ctx_.span_id_hex();
  out += "\",\"label\":\"";
  json_escape_into(&out, label_);
  out += "\",\"reason\":\"";
  json_escape_into(&out, reason);
  out += "\",\"recorded\":" + std::to_string(total_) + ",\"entries\":[";
  const std::uint64_t resident =
      total_ < kMaxEntries ? total_ : std::uint64_t{kMaxEntries};
  char buf[160];
  for (std::uint64_t i = 0; i < resident; ++i) {
    const std::uint64_t index =
        total_ <= kMaxEntries ? i : (total_ + i) % kMaxEntries;
    const Entry& e = ring_[static_cast<std::size_t>(index)];
    if (i != 0) out += ',';
    const char* kind = e.kind == Kind::kSpan    ? "span"
                       : e.kind == Kind::kEvent ? "event"
                                                : "note";
    const char* name = e.kind == Kind::kSpan
                           ? stage_name(static_cast<Stage>(e.code))
                       : e.kind == Kind::kEvent
                           ? event_type_name(static_cast<EventType>(e.code))
                           : "";
    std::snprintf(buf, sizeof buf,
                  "{\"kind\":\"%s\",\"name\":\"%s\",\"ns\":%llu,"
                  "\"a\":%llu,\"b\":%llu,\"detail\":\"",
                  kind, name, static_cast<unsigned long long>(e.ns),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += buf;
    json_escape_into(&out, e.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

FlightScope::FlightScope(FlightRecorder& recorder) noexcept
    : saved_(t_active) {
  t_active = &recorder;
}

FlightScope::~FlightScope() { t_active = saved_; }

FlightRecorder* active_flight_recorder() noexcept { return t_active; }

void dump_flight(const FlightRecorder& recorder, std::string_view reason) {
  FlightDump dump;
  if (recorder.context().valid()) {
    dump.trace_id = recorder.context().trace_id_hex();
  }
  dump.label = recorder.label();
  dump.reason = std::string(reason);
  dump.text = recorder.dump_text();
  dump.json = recorder.dump_json(reason);

  DumpRegistry& r = registry();
  std::string dir;
  std::uint64_t seq = 0;
  {
    const MutexLock lock(r.mutex);
    if (!r.dir_initialized) {
      r.dir_initialized = true;
      if (const char* env = std::getenv("IPDELTA_FLIGHT_DIR")) r.dir = env;
    }
    seq = ++r.sequence;
    r.dumps.push_back(dump);
    while (r.dumps.size() > kMaxDumps) r.dumps.pop_front();
    dir = r.dir;
  }
  if (!dir.empty()) {
    const std::string stem =
        dir + "/flight-" +
        (dump.trace_id.empty() ? "untraced" : dump.trace_id) + "-" +
        std::to_string(seq);
    write_best_effort(stem + ".txt", dump.text);
    write_best_effort(stem + ".json", dump.json);
  }
}

std::vector<FlightDump> flight_dumps() {
  DumpRegistry& r = registry();
  const MutexLock lock(r.mutex);
  return std::vector<FlightDump>(r.dumps.begin(), r.dumps.end());
}

void clear_flight_dumps() {
  DumpRegistry& r = registry();
  const MutexLock lock(r.mutex);
  r.dumps.clear();
}

void set_flight_dump_dir(std::string dir) {
  DumpRegistry& r = registry();
  const MutexLock lock(r.mutex);
  r.dir = std::move(dir);
  r.dir_initialized = true;
}

}  // namespace ipd::obs
