#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>

namespace ipd::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t next_nonce() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t process_entropy() noexcept {
  // system_clock (not the obs steady anchor): two processes minting at
  // the same counter value must still disagree.
  static const std::uint64_t anchor = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return anchor;
}

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

TraceContext& current_slot() noexcept {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace

std::string TraceContext::trace_id_hex() const {
  return hex_u64(trace_hi) + hex_u64(trace_lo);
}

std::string TraceContext::span_id_hex() const { return hex_u64(span_id); }

TraceContext mint_trace(std::uint64_t seed_hint) {
  const std::uint64_t base =
      process_entropy() ^ splitmix64(next_nonce() ^ seed_hint);
  TraceContext ctx;
  ctx.trace_hi = splitmix64(base);
  ctx.trace_lo = splitmix64(base + 1);
  ctx.span_id = splitmix64(base + 2);
  // A zero trace id means "no trace"; re-derive the vanishingly
  // unlikely collision so valid() stays truthful.
  if (!ctx.valid()) ctx.trace_lo = 1;
  if (ctx.span_id == 0) ctx.span_id = 1;
  ctx.parent_span_id = 0;
  ctx.sampled = true;
  return ctx;
}

TraceContext child_of(const TraceContext& parent) {
  if (!parent.valid()) return TraceContext{};
  TraceContext ctx = parent;
  ctx.parent_span_id = parent.span_id;
  ctx.span_id = splitmix64(parent.span_id ^ splitmix64(next_nonce()));
  if (ctx.span_id == 0) ctx.span_id = 1;
  return ctx;
}

const TraceContext& current_trace() noexcept { return current_slot(); }

TraceScope::TraceScope(const TraceContext& ctx) noexcept
    : saved_(current_slot()) {
  current_slot() = ctx;
}

TraceScope::~TraceScope() { current_slot() = saved_; }

}  // namespace ipd::obs
