// ipdelta — public one-stop API.
//
// Reproduces Burns & Long, "In-Place Reconstruction of Delta Compressed
// Files" (PODC '98). The typical flow:
//
//   // server side
//   ipd::Bytes delta = ipd::create_inplace_delta(old_bytes, new_bytes);
//
//   // device side: `storage` holds the old version, sized for either
//   ipd::length_t new_len = ipd::apply_delta_inplace(delta, storage);
//
// Lower-level building blocks live in the subsystem headers:
//   delta/differ.hpp     differencing algorithms (greedy, one-pass)
//   delta/codec.hpp      codeword formats & the container format
//   inplace/converter.hpp the in-place conversion algorithm itself
//   apply/*.hpp          scratch-space and in-place reconstruction
//   device/*.hpp         constrained-device + channel simulation
#pragma once

#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "apply/oracle.hpp"
#include "delta/codec.hpp"
#include "delta/differ.hpp"
#include "inplace/converter.hpp"

namespace ipd {

/// Knobs for the end-to-end delta producers below.
struct PipelineOptions {
  DifferKind differ = DifferKind::kOnePass;
  DifferOptions differ_options;
  ConvertOptions convert;  ///< in-place conversion (policy, format, ...)
  /// Secondary LZSS compression of the container payload. Batch appliers
  /// handle it transparently; the streaming applier rejects it.
  bool compress_payload = false;
};

/// Diff `reference` -> `version` and serialize as an ordinary
/// (scratch-space) delta file in `format`.
Bytes create_delta(ByteView reference, ByteView version,
                   DeltaFormat format = kPaperSequential,
                   const PipelineOptions& options = {});

/// Diff, convert for in-place reconstruction, and serialize. The result
/// applies with apply_delta_inplace(). When `report_out` is non-null the
/// conversion statistics (cycles broken, compression cost, ...) are
/// written there.
Bytes create_inplace_delta(ByteView reference, ByteView version,
                           const PipelineOptions& options = {},
                           ConvertReport* report_out = nullptr);

}  // namespace ipd
