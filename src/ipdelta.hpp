// ipdelta — public one-stop API.
//
// Reproduces Burns & Long, "In-Place Reconstruction of Delta Compressed
// Files" (PODC '98). The typical flow:
//
//   // server side: one configured handle, reused across builds
//   ipd::Pipeline pipeline({.differ = ipd::DifferKind::kOnePass});
//   ipd::BuildResult r = pipeline.build_inplace(old_bytes, new_bytes);
//   // r.delta is the wire artifact; r.report / r.stats / r.timing
//   // carry conversion counts, compression and per-stage timing.
//
//   // device side: `storage` holds the old version, sized for either
//   ipd::length_t new_len = ipd::apply_delta_inplace(r.delta, storage);
//
// A Pipeline is immutable and thread-safe: many threads may build
// through one handle concurrently, and each build additionally fans its
// own work (segmented differencing, CRWI edge discovery) across a
// thread pool — PipelineOptions::parallelism controls the width, and
// the output is byte-identical at every setting.
//
// Lower-level building blocks live in the subsystem headers:
//   delta/differ.hpp     differencing algorithms (greedy, one-pass)
//   delta/parallel_differ.hpp segmented parallel differencing
//   delta/codec.hpp      codeword formats & the container format
//   inplace/converter.hpp the in-place conversion algorithm itself
//   apply/*.hpp          scratch-space and in-place reconstruction
//   device/*.hpp         constrained-device + channel simulation
#pragma once

#include <memory>
#include <mutex>

#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "apply/oracle.hpp"
#include "core/thread_pool.hpp"
#include "delta/codec.hpp"
#include "delta/differ.hpp"
#include "delta/parallel_differ.hpp"
#include "delta/stats.hpp"
#include "inplace/converter.hpp"

namespace ipd {

/// Knobs for the end-to-end delta pipeline. One struct configures
/// everything: differencing, conversion, encoding, and parallelism.
struct PipelineOptions {
  DifferKind differ = DifferKind::kOnePass;
  DifferOptions differ_options;
  ConvertOptions convert;  ///< in-place conversion (policy, coalescing, ...)
  /// Secondary LZSS compression of the container payload. Batch appliers
  /// handle it transparently; the streaming applier rejects it.
  bool compress_payload = false;

  /// Encoding format for build_delta(). build_inplace() derives its
  /// format from this codeword with explicit offsets (in-place scripts
  /// are in topological, not write, order). This field is the single
  /// source of format truth: ConvertOptions::format is overwritten by
  /// every build, never read from the caller.
  DeltaFormat format = kPaperSequential;

  /// Build fan-out: 0 means hardware concurrency, 1 disables threading
  /// (same output either way — parallelism never changes bytes).
  std::size_t parallelism = 0;
  /// Versions smaller than this are built single-threaded AND
  /// unsegmented. Output-relevant (it gates segmentation), so it is
  /// part of the cache fingerprint; parallelism is not.
  std::size_t min_parallel_input = std::size_t{4} << 20;
  /// Target segment size for parallel differencing. Output-relevant.
  std::size_t parallel_segment_bytes = std::size_t{1} << 20;

  /// Format used by build_delta().
  DeltaFormat plain_format() const noexcept { return format; }
  /// Format used by build_inplace(): `format`'s codeword with explicit
  /// offsets, unconditionally.
  DeltaFormat inplace_format() const noexcept {
    return DeltaFormat{format.codeword, WriteOffsets::kExplicit};
  }
};

/// Wall-clock decomposition of one build, plus the parallel fan-out the
/// build actually used (1 = stage ran unsegmented/serial).
struct TimingBreakdown {
  std::uint64_t diff_ns = 0;
  std::uint64_t convert_ns = 0;  ///< 0 for build_delta()
  std::uint64_t encode_ns = 0;
  std::uint64_t total_ns = 0;
  std::size_t diff_segments = 1;  ///< segmented-differencing fan-out
  std::size_t crwi_chunks = 1;    ///< CRWI edge-discovery fan-out
};

/// Size accounting for one build.
struct DeltaStats {
  CompressionSample compression;  ///< reference/version/delta sizes
  ScriptSummary script;           ///< command counts of the emitted script
};

/// Everything one build produces. `delta` is the serialized artifact;
/// the rest is observability (report is all-defaults for build_delta(),
/// which performs no conversion).
struct BuildResult {
  Bytes delta;
  ConvertReport report;
  DeltaStats stats;
  TimingBreakdown timing;
};

/// One configured delta-build pipeline: differ + converter + encoder +
/// parallelism policy behind a single handle.
///
/// Thread-safe: build_delta/build_inplace/apply are const and may run
/// concurrently from any number of threads. Intra-build parallel work
/// runs on `shared_pool` when one is supplied (the DeltaService passes
/// its worker pool, so concurrent builds and intra-build fan-out share
/// one machine-sized pool — see docs/SERVER.md), otherwise on a lazily
/// created owned pool sized to `parallelism - 1` (the calling thread
/// always participates, so a Pipeline at parallelism p uses at most p
/// threads and a serial Pipeline creates none).
class Pipeline {
 public:
  explicit Pipeline(const PipelineOptions& options = {},
                    ThreadPool* shared_pool = nullptr);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Diff reference -> version and serialize as an ordinary
  /// (scratch-space) delta file in plain_format(). Conflict-free
  /// scripts are flagged in_place so devices can skip conversion.
  BuildResult build_delta(ByteView reference, ByteView version) const;

  /// Diff, convert for in-place reconstruction (§4), and serialize.
  /// The artifact applies with apply_delta_inplace().
  BuildResult build_inplace(ByteView reference, ByteView version) const;

  /// Apply any delta this pipeline (or anything else) produced:
  /// dispatches on the container's in_place flag, reconstructing either
  /// in a scratch buffer or in place in a copy of the reference.
  Bytes apply(ByteView delta, ByteView reference) const;

  const PipelineOptions& options() const noexcept { return options_; }

  /// Resolved build fan-out (options.parallelism with 0 expanded, and
  /// capped at a shared pool's width + 1).
  std::size_t parallelism() const noexcept { return parallelism_; }

 private:
  ParallelContext context(std::size_t version_size) const;
  SegmentPlanOptions segment_plan() const noexcept;

  PipelineOptions options_;
  std::unique_ptr<Differ> differ_;  // stateless; shared by all builds
  std::size_t parallelism_ = 1;
  ThreadPool* shared_pool_ = nullptr;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace ipd
