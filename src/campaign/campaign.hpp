// Fleet-scale OTA campaign simulator: the paper's §1 scenario run end to
// end, with everything this repo has built stacked together.
//
// run_campaign() publishes a seeded release history into a DeltaService,
// then drives a fleet of simulated FlashDevices — heterogeneous installed
// versions, every link optionally fault-injected (drops, truncations,
// bit flips via net/faulty_transport), and power cuts injected at
// arbitrary apply offsets — through the wire protocol to the newest
// release. Devices connect over deterministic in-memory loopback pairs
// served by DeltaServer::serve_session, so a 10k-device campaign runs in
// one process with no sockets and is bit-reproducible from its seed.
//
// Each device follows one of the two client stories:
//   * streaming (default): OtaClient::update_device_streaming — artifact
//     bytes go straight to flash through the journaled streaming updater;
//     a power cut reboots the device, which resumes from its apply
//     journal with a byte-exact network RESUME.
//   * staged (staged_fraction): OtaClient::update_device — download into
//     a TransferJournal, then the journaled staged apply.
//
// The rollout is staged by RolloutPolicy waves with an abort-on-failure-
// rate gate at every wave boundary. The report's headline number is
// `bricked`: devices left holding no recoverable version. The whole
// point of the apply journal is that this is zero no matter what the
// fault schedule does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/rollout.hpp"
#include "campaign/slo.hpp"
#include "core/types.hpp"
#include "device/stream_updater.hpp"
#include "net/ota_client.hpp"
#include "obs/histogram.hpp"

namespace ipd {

struct CampaignOptions {
  /// Fleet size and the seeded release history it upgrades across.
  std::size_t devices = 500;
  std::size_t releases = 4;  ///< devices start below, target = releases-1
  length_t image_bytes = 24u << 10;
  std::size_t edits_per_release = 25;
  std::uint64_t seed = 1;

  RolloutPolicy rollout;

  /// Link fault rates, applied to every connection (see FaultOptions).
  double drop_rate = 0;
  double truncate_rate = 0;
  double flip_rate = 0;
  std::size_t grace_ops = 4;

  /// Fraction of devices that suffer power cuts; an afflicted device is
  /// cut 1..max_power_cuts times, each at a uniformly random flash-write
  /// offset (so cuts land mid-journal-record and mid-copy, not just at
  /// command boundaries).
  double power_cut_rate = 0;
  std::size_t max_power_cuts = 3;

  /// Fraction of the fleet using the staged download-then-apply client
  /// path instead of streaming-to-flash.
  double staged_fraction = 0;

  /// On-flash journal region size per device.
  std::size_t journal_bytes = 16u << 10;

  /// Fleet SLO evaluated at every wave boundary (slo.hpp). Disabled by
  /// default; when enabled, a burn-rate or p99 breach aborts the rollout
  /// exactly like the flat failure-rate gate, and the breach reason is
  /// reported.
  SloSpec slo;

  StreamUpdaterOptions apply;
  /// Per-connection client knobs; backoff defaults here are tightened
  /// for simulation (1 ms initial, 8 ms cap) — a campaign is wall-clock
  /// bound by its slowest retrying device. The short read timeout is
  /// load-bearing under fault injection: a bit flip in a frame's length
  /// prefix (outside the payload CRC) stalls both peers mid-read, and
  /// the timeout is what turns that stall into a retryable
  /// TransportError (tearing down the connection also frees the blocked
  /// server session).
  OtaClientOptions client{/*max_attempts=*/8, /*backoff_initial_ms=*/1,
                          /*backoff_max_ms=*/8, /*max_chunk=*/4096,
                          /*read_timeout_ms=*/1000};
};

struct CampaignReport {
  // Fleet outcome. attempted = updated + failed; skipped counts devices
  // an abort left untouched (still safely on their old release).
  std::size_t devices = 0;
  std::size_t attempted = 0;
  std::size_t updated = 0;
  std::size_t failed = 0;
  /// Failed devices holding NO recoverable version: the image matches no
  /// published release and the journal has no record to resume from.
  /// The journal exists to keep this at zero.
  std::size_t bricked = 0;
  std::size_t skipped = 0;
  bool aborted = false;

  // Device-side effort totals across the fleet.
  std::size_t staged_devices = 0;
  std::size_t retries = 0;       ///< client reconnects after link faults
  std::size_t resumes = 0;       ///< byte-exact RESUME requests issued
  std::size_t reboots = 0;       ///< power-cut recoveries (cuts that fired)
  std::size_t restarts = 0;      ///< client restarts after hard errors
  std::size_t hops = 0;          ///< artifacts applied fleet-wide
  std::uint64_t link_faults = 0; ///< injected drops+truncations+flips
  std::uint64_t bytes_received = 0;

  double wall_seconds = 0;
  std::vector<std::size_t> waves;  ///< cumulative devices per wave run
  obs::HistogramSnapshot device_update_ns;  ///< per-device wall time

  // Per-wave health (counter deltas + latency histogram, one entry per
  // wave actually run) and the SLO verdict that stopped the rollout, if
  // one did. slo_aborted implies aborted.
  std::vector<WaveHealth> wave_health;
  bool slo_aborted = false;
  bool slo_evaluated = false; ///< at least one wave was judged
  double slo_burn_rate = 0;   ///< burn rate of the last judged wave
  std::string slo_reason;     ///< breach description, "" when healthy

  // Server-side load, copied from the serving DeltaService's metrics.
  std::uint64_t server_sessions = 0;
  std::uint64_t server_bytes_sent = 0;
  std::uint64_t server_resumes = 0;
  std::uint64_t server_builds = 0;
  std::uint64_t server_cache_hits = 0;

  /// Human-readable multi-line summary.
  std::string render() const;
  /// Single-line JSON object (the bench trend format).
  std::string json() const;
};

/// Run one campaign to completion (or abort). Deterministic for a fixed
/// options struct up to thread scheduling: every device's faults, cuts,
/// and start release derive from `seed`, and device outcomes do not
/// depend on each other. Throws ValidationError for nonsensical options.
CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace ipd
