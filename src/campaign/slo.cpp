#include "campaign/slo.hpp"

#include <cstdio>
#include <sstream>

#include "core/types.hpp"

namespace ipd {

void SloSpec::validate() const {
  if (!(target_success_rate > 0 && target_success_rate <= 1)) {
    throw ValidationError("slo: target_success_rate must lie in (0, 1]");
  }
  if (max_burn_rate <= 0) {
    throw ValidationError("slo: max_burn_rate must be positive");
  }
}

double WaveHealth::failure_rate() const {
  if (attempted == 0) return 0;
  return static_cast<double>(failed) / static_cast<double>(attempted);
}

double WaveHealth::burn_rate(const SloSpec& spec) const {
  const double budget = 1.0 - spec.target_success_rate;
  const double rate = failure_rate();
  if (budget <= 0) {
    // Perfection promised: any failure overruns an empty budget. Report
    // a huge finite burn so comparisons and JSON stay well-behaved.
    return rate > 0 ? 1e9 : 0;
  }
  return rate / budget;
}

std::string WaveHealth::render() const {
  std::ostringstream out;
  out << "wave " << wave << ": " << attempted << " attempted, " << updated
      << " updated, " << failed << " failed";
  if (bricked > 0) out << ", " << bricked << " BRICKED";
  out << ", " << retries << " retries, " << reboots << " reboots, "
      << link_faults << " link faults";
  char buf[64];
  std::snprintf(buf, sizeof buf, ", p50 %.1f ms, p99 %.1f ms",
                latency.quantile(0.5) / 1e6, latency.quantile(0.99) / 1e6);
  out << buf;
  return out.str();
}

std::string WaveHealth::json() const {
  std::ostringstream out;
  out << "{\"wave\":" << wave << ",\"attempted\":" << attempted
      << ",\"updated\":" << updated << ",\"failed\":" << failed
      << ",\"bricked\":" << bricked << ",\"retries\":" << retries
      << ",\"reboots\":" << reboots << ",\"link_faults\":" << link_faults
      << ",\"p50_ns\":"
      << static_cast<std::uint64_t>(latency.quantile(0.5)) << ",\"p99_ns\":"
      << static_cast<std::uint64_t>(latency.quantile(0.99)) << "}";
  return out.str();
}

SloEval evaluate_slo(const SloSpec& spec, const WaveHealth& wave) {
  SloEval eval;
  eval.p99_ns = static_cast<std::uint64_t>(wave.latency.quantile(0.99));
  if (!spec.enabled || wave.attempted < spec.min_attempts) return eval;
  eval.evaluated = true;
  eval.burn_rate = wave.burn_rate(spec);

  char buf[160];
  if (eval.burn_rate > spec.max_burn_rate) {
    eval.breached = true;
    std::snprintf(buf, sizeof buf,
                  "wave %zu burn rate %.2f exceeds %.2f "
                  "(%zu/%zu failed vs %.2f%% budget)",
                  wave.wave, eval.burn_rate, spec.max_burn_rate, wave.failed,
                  wave.attempted, (1.0 - spec.target_success_rate) * 100.0);
    eval.reason = buf;
    return eval;
  }
  if (spec.p99_latency_budget_ns > 0 &&
      eval.p99_ns > spec.p99_latency_budget_ns) {
    eval.breached = true;
    std::snprintf(buf, sizeof buf,
                  "wave %zu p99 %.1f ms exceeds budget %.1f ms", wave.wave,
                  static_cast<double>(eval.p99_ns) / 1e6,
                  static_cast<double>(spec.p99_latency_budget_ns) / 1e6);
    eval.reason = buf;
  }
  return eval;
}

}  // namespace ipd
