#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "apply/apply_journal.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "core/rng.hpp"
#include "device/flash_journal.hpp"
#include "device/resumable_updater.hpp"
#include "device/updater.hpp"
#include "net/delta_server.hpp"
#include "net/faulty_transport.hpp"
#include "net/loopback_transport.hpp"

namespace ipd {
namespace {

std::vector<Bytes> make_history(const CampaignOptions& o) {
  Rng rng(o.seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, o.image_bytes, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < o.releases; ++i) {
    history.push_back(mutate(history.back(), rng, o.edits_per_release, model));
  }
  return history;
}

/// Everything the device workers share; counters are relaxed atomics
/// because they are statistics, not synchronization.
struct FleetState {
  const CampaignOptions& options;
  const std::vector<Bytes>& history;
  DeltaServer& server;
  ReleaseId target;
  std::size_t image_area;

  std::atomic<std::size_t> updated{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> bricked{0};
  std::atomic<std::size_t> staged_devices{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> resumes{0};
  std::atomic<std::size_t> reboots{0};
  std::atomic<std::size_t> restarts{0};
  std::atomic<std::size_t> hops{0};
  std::atomic<std::uint64_t> bytes_received{0};
  obs::Histogram device_ns;
  FaultStats fault_stats;
};

/// Does the image area hold some published release, byte for byte? An
/// in-place apply only guarantees the first version_length bytes, so
/// compare prefixes.
bool holds_some_release(const FlashDevice& device,
                        const std::vector<Bytes>& history) {
  const ByteView image = device.inspect();
  for (const Bytes& body : history) {
    if (body.size() <= image.size() &&
        std::equal(body.begin(), body.end(), image.begin())) {
      return true;
    }
  }
  return false;
}

/// Is there any valid apply-journal record to resume from? The staged
/// path journals with header_capacity = 0 and the streaming path with
/// its own capacities; scan with whichever layout this device used.
bool has_resumable_record(FlashDevice& device, const JournalRegion& journal,
                          const ApplyJournalOptions& jopts) {
  try {
    const std::size_t slot = ApplyJournal::slot_bytes(jopts);
    if (journal.size < 2 * slot) return false;
    Bytes scratch(slot, 0);
    FlashJournalStorage storage(device,
                                JournalRegion{journal.offset, 2 * slot});
    const ApplyJournal aj(storage, MutByteView(scratch), jopts);
    return aj.newest().has_value();
  } catch (const Error&) {
    return false;
  }
}

/// Run one device to completion (or exhaustion). Returns true when the
/// device ends on the target release.
bool run_device(FleetState& fleet, std::size_t index) {
  const CampaignOptions& o = fleet.options;
  Rng rng(derive_seed(o.seed, index));
  const ReleaseId start =
      static_cast<ReleaseId>(rng.below(static_cast<std::uint64_t>(fleet.target)));
  const bool staged = rng.chance(o.staged_fraction);
  std::size_t cuts_left =
      rng.chance(o.power_cut_rate)
          ? static_cast<std::size_t>(
                rng.range(1, std::max<std::uint64_t>(o.max_power_cuts, 1)))
          : 0;

  FlashDevice device(fleet.image_area + o.journal_bytes, 512,
                     fleet.image_area + (64u << 10));
  device.load_image(fleet.history[start]);
  const JournalRegion journal{fleet.image_area, o.journal_bytes};
  clear_journal(device, journal);
  if (staged) fleet.staged_devices.fetch_add(1, std::memory_order_relaxed);

  // Uniform flash-write offset for a cut: an update writes roughly the
  // version body plus journal records, so a bound of twice the largest
  // body lands cuts everywhere from the first journal record to the
  // final CRC sweep (some never fire; those updates just complete).
  const std::uint64_t write_bound =
      2 * std::max<std::uint64_t>(fleet.history.back().size(), 4096);

  const bool faulty_links =
      o.drop_rate > 0 || o.truncate_rate > 0 || o.flip_rate > 0;
  TransferJournal transfer;  // staged path; lives across restarts
  std::uint64_t connection = 0;
  std::size_t restarts = 0;
  std::size_t reboots = 0;
  bool done = false;

  while (!done) {
    if (cuts_left > 0) {
      device.inject_power_failure_after(1 + rng.below(write_bound));
    }
    std::vector<std::thread> sessions;
    const auto factory = [&]() -> std::unique_ptr<Transport> {
      auto [client_end, server_end] = make_loopback_pair();
      sessions.emplace_back(
          [&server = fleet.server, end = std::move(server_end)]() mutable {
            server.serve_session(*end);
          });
      if (!faulty_links) return std::move(client_end);
      FaultOptions faults;
      faults.seed = derive_seed(derive_seed(o.seed, index), connection++);
      faults.drop_rate = o.drop_rate;
      faults.truncate_rate = o.truncate_rate;
      faults.flip_rate = o.flip_rate;
      faults.grace_ops = o.grace_ops;
      return std::make_unique<FaultyTransport>(std::move(client_end), faults,
                                               &fleet.fault_stats);
    };

    bool reboot = false;
    bool gave_up = false;
    try {
      OtaClient client(factory, o.client);
      // `start` is deliberately stale after the first reboot/restart:
      // the on-device journal is the truth and must win (the trust-
      // forward rule in OtaClient).
      const OtaReport r =
          staged ? client.update_device(device, journal, start, fleet.target,
                                        channel_28k(), &transfer)
                 : client.update_device_streaming(device, journal, start,
                                                  fleet.target, o.apply);
      fleet.retries.fetch_add(r.retries, std::memory_order_relaxed);
      fleet.resumes.fetch_add(r.resumes, std::memory_order_relaxed);
      fleet.hops.fetch_add(r.hops, std::memory_order_relaxed);
      fleet.bytes_received.fetch_add(r.bytes_received,
                                     std::memory_order_relaxed);
      done = true;
    } catch (const FlashDevice::PowerFailure&) {
      reboot = true;
    } catch (const Error&) {
      gave_up = ++restarts >= std::max<std::size_t>(
                                  o.rollout.max_attempts_per_device, 1);
    }
    for (std::thread& t : sessions) t.join();

    if (reboot) {
      // "Reboot": disarm the simulator, drop all client-side RAM state
      // (a fresh OtaClient), and go around with the same stale `start`.
      device.clear_power_failure();
      --cuts_left;
      ++reboots;
      fleet.reboots.fetch_add(1, std::memory_order_relaxed);
      if (reboots > o.rollout.reboot_budget) break;
    } else if (gave_up) {
      break;
    }
  }
  device.clear_power_failure();
  fleet.restarts.fetch_add(restarts, std::memory_order_relaxed);

  const Bytes& want = fleet.history[fleet.target];
  const ByteView image = device.inspect();
  const bool updated =
      done && want.size() <= image.size() &&
      std::equal(want.begin(), want.end(), image.begin());
  if (updated) {
    fleet.updated.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  fleet.failed.fetch_add(1, std::memory_order_relaxed);
  // Brick check: a failed device is fine as long as it still holds SOME
  // release, or its journal can finish the interrupted apply next boot.
  ApplyJournalOptions jopts;
  jopts.page_size = device.page_size();
  jopts.undo_capacity = staged ? UpdaterOptions{}.window_bytes
                               : fleet.options.apply.window_bytes;
  jopts.header_capacity = staged ? 0 : fleet.options.apply.header_capacity;
  if (!holds_some_release(device, fleet.history) &&
      !has_resumable_record(device, journal, jopts)) {
    fleet.bricked.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void run_wave(FleetState& fleet, std::size_t begin, std::size_t end,
              obs::Histogram& wave_latency) {
  std::atomic<std::size_t> next{begin};
  const std::size_t workers = std::min(
      std::max<std::size_t>(fleet.options.rollout.max_concurrency, 1),
      end - begin);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t index =
            next.fetch_add(1, std::memory_order_relaxed);
        if (index >= end) return;
        const auto t0 = std::chrono::steady_clock::now();
        run_device(fleet, index);
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        fleet.device_ns.record(ns);
        wave_latency.record(ns);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Fleet counters captured at a wave boundary; deltas feed WaveHealth.
struct FleetSnapshot {
  std::size_t updated, failed, bricked, retries, reboots;
  std::uint64_t link_faults;
};

FleetSnapshot snapshot_fleet(const FleetState& fleet) {
  return FleetSnapshot{fleet.updated.load(),  fleet.failed.load(),
                       fleet.bricked.load(),  fleet.retries.load(),
                       fleet.reboots.load(),  fleet.fault_stats.total()};
}

}  // namespace

std::string CampaignReport::render() const {
  std::ostringstream out;
  out << "campaign: " << devices << " devices";
  if (aborted) out << "  [ABORTED]";
  out << "\n  waves:";
  for (const std::size_t w : waves) out << ' ' << w;
  out << "\n  updated " << updated << "  failed " << failed << "  bricked "
      << bricked << "  skipped " << skipped;
  out << "\n  staged " << staged_devices << "  hops " << hops << "  retries "
      << retries << "  resumes " << resumes << "  reboots " << reboots
      << "  restarts " << restarts << "  link faults " << link_faults;
  out << "\n  received " << format_bytes(bytes_received) << "  wall "
      << wall_seconds << " s";
  out << "\n  device update " << device_update_ns.latency_line();
  for (const WaveHealth& w : wave_health) out << "\n  " << w.render();
  if (slo_aborted) {
    out << "\n  SLO BREACH: " << slo_reason;
  } else if (slo_evaluated) {
    out << "\n  slo: healthy, burn rate " << slo_burn_rate;
  }
  out << "\n  server: sessions " << server_sessions << "  sent "
      << format_bytes(server_bytes_sent) << "  resumes " << server_resumes
      << "  builds " << server_builds << "  cache hits " << server_cache_hits
      << "\n";
  return out.str();
}

std::string CampaignReport::json() const {
  std::ostringstream out;
  out << "{\"devices\":" << devices << ",\"attempted\":" << attempted
      << ",\"updated\":" << updated << ",\"failed\":" << failed
      << ",\"bricked\":" << bricked << ",\"skipped\":" << skipped
      << ",\"aborted\":" << (aborted ? "true" : "false")
      << ",\"staged_devices\":" << staged_devices << ",\"hops\":" << hops
      << ",\"retries\":" << retries << ",\"resumes\":" << resumes
      << ",\"reboots\":" << reboots << ",\"restarts\":" << restarts
      << ",\"link_faults\":" << link_faults
      << ",\"bytes_received\":" << bytes_received << ",\"wall_seconds\":"
      << wall_seconds << ",\"p50_device_update_ns\":"
      << static_cast<std::uint64_t>(device_update_ns.quantile(0.5))
      << ",\"p99_device_update_ns\":"
      << static_cast<std::uint64_t>(device_update_ns.quantile(0.99))
      << ",\"slo_aborted\":" << (slo_aborted ? "true" : "false")
      << ",\"slo_burn_rate\":" << slo_burn_rate << ",\"wave_health\":[";
  for (std::size_t i = 0; i < wave_health.size(); ++i) {
    if (i != 0) out << ',';
    out << wave_health[i].json();
  }
  out << "]"
      << ",\"server_sessions\":" << server_sessions
      << ",\"server_bytes_sent\":" << server_bytes_sent
      << ",\"server_resumes\":" << server_resumes
      << ",\"server_builds\":" << server_builds
      << ",\"server_cache_hits\":" << server_cache_hits << "}";
  return out.str();
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (options.releases < 2) {
    throw ValidationError("campaign: need at least two releases to upgrade");
  }
  for (const double rate :
       {options.drop_rate, options.truncate_rate, options.flip_rate,
        options.power_cut_rate, options.staged_fraction}) {
    if (rate < 0 || rate > 1) {
      throw ValidationError("campaign: rates must lie in [0, 1]");
    }
  }
  if (options.slo.enabled) options.slo.validate();

  CampaignReport report;
  report.devices = options.devices;
  report.waves = plan_waves(options.devices, options.rollout.waves);
  if (options.devices == 0) return report;

  const std::vector<Bytes> history = make_history(options);
  VersionStore store;
  for (const Bytes& body : history) store.publish(body);
  DeltaService service(store, ServiceOptions{});
  // Never start()ed: devices connect through in-memory loopback pairs
  // served by serve_session, so campaigns run where sockets don't.
  DeltaServer server(service, ServerConfig{});

  std::size_t max_len = 0;
  for (const Bytes& body : history) max_len = std::max(max_len, body.size());
  FleetState fleet{options, history, server,
                   static_cast<ReleaseId>(options.releases - 1),
                   /*image_area=*/(max_len + 511) / 512 * 512 + 512};

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = 0;
  for (const std::size_t wave_end : report.waves) {
    const FleetSnapshot before = snapshot_fleet(fleet);
    obs::Histogram wave_latency;
    run_wave(fleet, done, wave_end, wave_latency);
    const FleetSnapshot after = snapshot_fleet(fleet);

    WaveHealth health;
    health.wave = report.wave_health.size() + 1;
    health.attempted = wave_end - done;
    health.updated = after.updated - before.updated;
    health.failed = after.failed - before.failed;
    health.bricked = after.bricked - before.bricked;
    health.retries = after.retries - before.retries;
    health.reboots = after.reboots - before.reboots;
    health.link_faults = after.link_faults - before.link_faults;
    health.latency = wave_latency.snapshot();
    report.wave_health.push_back(health);
    done = wave_end;

    const SloEval eval = evaluate_slo(options.slo, health);
    if (eval.evaluated) {
      report.slo_evaluated = true;
      report.slo_burn_rate = eval.burn_rate;
    }
    if (eval.breached) {
      report.aborted = true;
      report.slo_aborted = true;
      report.slo_reason = eval.reason;
      break;
    }

    const std::size_t failed = fleet.failed.load();
    if (failed >= options.rollout.min_failures_to_abort &&
        static_cast<double>(failed) >
            options.rollout.abort_failure_rate * static_cast<double>(done)) {
      report.aborted = true;
      break;
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  report.attempted = done;
  report.skipped = options.devices - done;
  report.updated = fleet.updated.load();
  report.failed = fleet.failed.load();
  report.bricked = fleet.bricked.load();
  report.staged_devices = fleet.staged_devices.load();
  report.retries = fleet.retries.load();
  report.resumes = fleet.resumes.load();
  report.reboots = fleet.reboots.load();
  report.restarts = fleet.restarts.load();
  report.hops = fleet.hops.load();
  report.link_faults = fleet.fault_stats.total();
  report.bytes_received = fleet.bytes_received.load();
  report.device_update_ns = fleet.device_ns.snapshot();

  const ServiceMetrics& metrics = service.metrics();
  report.server_sessions = metrics.net_sessions.load();
  report.server_bytes_sent = metrics.net_bytes_sent.load();
  report.server_resumes = metrics.net_resumes.load();
  report.server_builds = metrics.builds.load();
  report.server_cache_hits = metrics.cache_hits.load();
  return report;
}

}  // namespace ipd
