// Staged rollout policy for OTA campaigns (src/campaign/campaign.hpp).
//
// Real fleets never update everyone at once: a canary wave goes first,
// and each later wave only starts if the failure rate so far stays under
// a threshold. The policy here is the minimal deterministic version of
// that: cumulative fleet fractions per wave, a concurrency cap (the
// "devices updating right now" budget, which is also what bounds the
// server's concurrent session load), and an abort rule evaluated at
// every wave boundary.
#pragma once

#include <cstddef>
#include <vector>

namespace ipd {

struct RolloutPolicy {
  /// Cumulative fleet fractions per wave, each in (0, 1], nondecreasing.
  /// {0.01, 0.1, 0.5, 1.0} = 1% canary, then 10%, 50%, everyone. A final
  /// fraction below 1.0 still ends with the whole fleet (plan_waves
  /// appends it), so a policy can only stage the ramp, not strand
  /// devices.
  std::vector<double> waves = {0.01, 0.10, 0.50, 1.00};
  /// Devices updating concurrently (worker threads in the simulator).
  std::size_t max_concurrency = 8;
  /// Abort at a wave boundary when failed / attempted exceeds this rate
  /// AND at least min_failures_to_abort devices have failed. Devices in
  /// later waves are never attempted (reported as skipped).
  double abort_failure_rate = 0.25;
  std::size_t min_failures_to_abort = 8;
  /// Full client restarts per device after a non-power-cut error (each
  /// restart gets a fresh link; the OTA client retries within one
  /// restart on its own).
  std::size_t max_attempts_per_device = 3;
  /// Power-cut reboots tolerated per device before it counts as failed
  /// (a real fleet would flag such a device for service; its journal
  /// still protects it from bricking).
  std::size_t reboot_budget = 32;
};

/// Turn cumulative wave fractions into cumulative device counts over a
/// fleet of `fleet` devices: strictly increasing, each wave at least one
/// device, final entry always == fleet. Empty `waves` (or fleet == 0)
/// degenerates to a single all-at-once wave ({fleet}, or {} for an
/// empty fleet). Throws ValidationError for fractions outside (0, 1] or
/// a decreasing sequence.
std::vector<std::size_t> plan_waves(std::size_t fleet,
                                    const std::vector<double>& waves);

}  // namespace ipd
