#include "campaign/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/types.hpp"

namespace ipd {

std::vector<std::size_t> plan_waves(std::size_t fleet,
                                    const std::vector<double>& waves) {
  if (fleet == 0) return {};
  if (waves.empty()) return {fleet};

  double previous = 0;
  for (const double f : waves) {
    if (!(f > 0.0) || f > 1.0) {
      throw ValidationError("rollout: wave fraction " + std::to_string(f) +
                            " outside (0, 1]");
    }
    if (f < previous) {
      throw ValidationError("rollout: wave fractions must be nondecreasing");
    }
    previous = f;
  }

  std::vector<std::size_t> counts;
  for (const double f : waves) {
    const auto want = static_cast<std::size_t>(
        std::ceil(f * static_cast<double>(fleet)));
    // Strictly increasing: every wave attempts at least one new device;
    // fractions that round to the same count collapse into one wave.
    const std::size_t floor_count = counts.empty() ? 1 : counts.back() + 1;
    const std::size_t count = std::min(fleet, std::max(want, floor_count));
    if (counts.empty() || count > counts.back()) counts.push_back(count);
  }
  if (counts.back() != fleet) counts.push_back(fleet);
  return counts;
}

}  // namespace ipd
