// Fleet SLO layer: per-wave health and burn-rate abort gates.
//
// The rollout policy's abort gate (failure count vs. a flat rate) is a
// blunt instrument: it cannot express "we promised 99% of devices update
// within a latency budget" or react to a wave that is merely eating the
// error budget too fast to survive the fleet. An SloSpec states the
// promise; run_campaign() evaluates it at every wave boundary against
// that wave's WaveHealth (counter deltas plus a latency histogram) and
// aborts the rollout when the burn rate or the p99 budget is breached.
//
// Burn rate is the SRE convention: the fraction of the error budget a
// wave consumed, normalized so 1.0 means "exactly on budget". With a
// 99% target the budget is 1% failures; a wave failing 3% of devices
// burns at 3.0. Waves smaller than min_attempts are never judged — a
// 1-device canary wave failing its 1 device is not a 100% failure
// signal.
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace ipd {

/// The promise a campaign makes to the fleet.
struct SloSpec {
  bool enabled = false;
  /// Fraction of attempted devices that must end updated (0, 1].
  double target_success_rate = 0.99;
  /// Per-device p99 update latency budget; 0 disables the latency SLO.
  std::uint64_t p99_latency_budget_ns = 0;
  /// Abort when a wave burns error budget faster than this multiple.
  double max_burn_rate = 2.0;
  /// Waves with fewer attempts than this are never judged.
  std::size_t min_attempts = 20;

  /// Throws ValidationError on nonsensical values.
  void validate() const;
};

/// One wave's outcome, as counter deltas across the wave boundary.
struct WaveHealth {
  std::size_t wave = 0;  ///< 1-based wave index
  std::size_t attempted = 0;
  std::size_t updated = 0;
  std::size_t failed = 0;
  std::size_t bricked = 0;
  std::size_t retries = 0;
  std::size_t reboots = 0;
  std::uint64_t link_faults = 0;
  obs::HistogramSnapshot latency;  ///< per-device update wall time (ns)

  double failure_rate() const;
  /// Error-budget consumption multiple under `spec` (1.0 = on budget).
  /// A zero-size failure budget with any failure reports a huge finite
  /// burn rather than dividing by zero.
  double burn_rate(const SloSpec& spec) const;

  /// One human-readable line: "wave 2: 100 attempted, 3 failed ...".
  std::string render() const;
  /// Single-line JSON object (embedded in CampaignReport::json()).
  std::string json() const;
};

/// Verdict for one wave under one spec.
struct SloEval {
  bool evaluated = false;  ///< enough attempts to judge
  bool breached = false;
  double burn_rate = 0;
  std::uint64_t p99_ns = 0;
  std::string reason;  ///< human-readable breach description, "" if none
};

/// Judge one wave. Never throws; an unjudgeable wave (too small, spec
/// disabled) returns evaluated == false, breached == false.
SloEval evaluate_slo(const SloSpec& spec, const WaveHealth& wave);

}  // namespace ipd
