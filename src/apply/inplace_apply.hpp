// In-place reconstruction (§1, §4.1): the version file materialises in the
// very buffer holding the reference, using no scratch space proportional
// to the file — the whole point of the paper.
//
// Copies whose read and write intervals overlap are legal for a single
// command (§4.1): they are performed left-to-right when f >= t and
// right-to-left when f < t, so no byte is read after being overwritten.
// std::memmove has exactly these semantics; we expose an explicit
// byte-loop variant too so tests can check the direction argument.
#pragma once

#include "delta/codec.hpp"
#include "delta/script.hpp"

namespace ipd {

/// Apply `script` inside `buffer`.
///
/// On entry the first `reference_length` bytes of `buffer` hold the
/// reference; `buffer.size()` must be >= max(reference_length,
/// version_length) — the caller provisions the larger of the two, which
/// is the storage a device needs anyway to hold either file version.
/// On return the first version_length bytes hold the version.
///
/// The script is trusted to be in-place safe (Equation 2); applying a
/// conflicting script silently corrupts, exactly as the paper describes —
/// use apply_inplace_checked / the oracle when the input is untrusted.
void apply_inplace(const Script& script, MutByteView buffer,
                   length_t reference_length, length_t version_length);

/// As apply_inplace, but verifies Equation 2 while applying (tracks
/// written intervals); throws ConflictError on the first write-before-
/// read violation, leaving the buffer partially modified.
void apply_inplace_checked(const Script& script, MutByteView buffer,
                           length_t reference_length,
                           length_t version_length);

/// Decode a serialized delta file (must carry the in_place flag) and apply
/// it inside `buffer` (sized per apply_inplace). Returns the version
/// length. Verifies the reconstruction against the file's version CRC.
length_t apply_delta_inplace(ByteView delta, MutByteView buffer);

/// Overlap-safe single-copy primitive used by both appliers; exposed for
/// tests. Copies length bytes from `from` to `to` within `buffer`,
/// left-to-right when from >= to, right-to-left otherwise.
void overlapping_copy(MutByteView buffer, offset_t from, offset_t to,
                      length_t length) noexcept;

}  // namespace ipd
