#include "apply/oracle.hpp"

#include <map>

namespace ipd {

ConflictAnalysis analyze_conflicts(const Script& script,
                                   std::size_t max_conflicts) {
  ConflictAnalysis analysis;
  // Disjoint written intervals -> (last, writer index).
  std::map<offset_t, std::pair<offset_t, std::size_t>> written;

  const auto& commands = script.commands();
  for (std::size_t j = 0; j < commands.size(); ++j) {
    if (const auto* copy = std::get_if<CopyCommand>(&commands[j])) {
      if (copy->length > 0) {
        const Interval read = copy->read_interval();
        // First candidate: the last interval starting at or before
        // read.last; walk left while intervals still intersect.
        auto it = written.upper_bound(read.last);
        while (it != written.begin()) {
          --it;
          const Interval w{it->first, it->second.first};
          if (w.last < read.first) {
            break;  // disjoint & sorted: nothing further left intersects
          }
          const Interval overlap{std::max(w.first, read.first),
                                 std::min(w.last, read.last)};
          analysis.conflicts.push_back(
              Conflict{j, it->second.second, overlap});
          analysis.corrupt_bytes += overlap.length();
          if (analysis.conflicts.size() >= max_conflicts) {
            return analysis;
          }
        }
      }
    }
    const length_t len = command_length(commands[j]);
    if (len > 0) {
      const Interval w = command_write_interval(commands[j]);
      written[w.first] = {w.last, j};
    }
  }
  return analysis;
}

}  // namespace ipd
