#include "apply/apply_journal.hpp"

#include <algorithm>

#include "core/buffer.hpp"
#include "core/checksum.hpp"

namespace ipd {
namespace {

constexpr char kMagic[4] = {'I', 'P', 'A', 'J'};

// Fixed record prefix: magic, seq, kind, flags, artifact identity, hop
// metadata, progress cursor, undo/header lengths. Variable payloads and
// the CRC-32C trailer follow.
constexpr std::size_t kFixedBytes = 4 + 8 + 1 + 1 + 4 + 8 + 4 + 4 + 4 + 8 +
                                    8 + 8 + 4 + 8 + 4 + 4;
constexpr std::size_t kTrailerBytes = 4;

constexpr std::uint8_t kFlagFullImage = 0x01;

std::size_t round_up(std::size_t value, std::size_t unit) noexcept {
  if (unit <= 1) return value;
  return (value + unit - 1) / unit * unit;
}

}  // namespace

void MemoryJournalStorage::read(offset_t offset, MutByteView out) {
  if (offset + out.size() > bytes_.size()) {
    throw DeviceError("memory journal: read out of range");
  }
  std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(offset),
              out.size(), out.begin());
}

void MemoryJournalStorage::write(offset_t offset, ByteView data) {
  if (offset + data.size() > bytes_.size()) {
    throw DeviceError("memory journal: write out of range");
  }
  std::copy(data.begin(), data.end(),
            bytes_.begin() + static_cast<std::ptrdiff_t>(offset));
}

std::size_t ApplyJournal::slot_bytes(
    const ApplyJournalOptions& options) noexcept {
  return round_up(kFixedBytes + options.undo_capacity +
                      options.header_capacity + kTrailerBytes,
                  options.page_size);
}

ApplyJournal::ApplyJournal(JournalStorage& storage, MutByteView scratch,
                           const ApplyJournalOptions& options)
    : storage_(storage), scratch_(scratch), options_(options),
      slot_bytes_(slot_bytes(options)) {
  if (scratch_.size() < slot_bytes_) {
    throw DeviceError("apply journal: scratch buffer smaller than one slot (" +
                      std::to_string(slot_bytes_) + " bytes)");
  }
  if (storage_.size() < 2 * slot_bytes_) {
    throw DeviceError("apply journal: storage smaller than two slots (" +
                      std::to_string(2 * slot_bytes_) + " bytes)");
  }
  // Recovery scan: the newest valid record wins; next_seq continues past
  // ANY valid record (even a stale artifact's) so a fresh append never
  // lands on top of the only intact slot.
  for (int slot = 0; slot < 2; ++slot) {
    auto record = load_slot(slot);
    if (!record) continue;
    next_seq_ = std::max(next_seq_, record->seq + 1);
    if (!newest_ || record->seq > newest_->seq) {
      newest_ = std::move(record);
    }
  }
}

std::optional<ApplyRecord> ApplyJournal::load_slot(int slot) {
  const MutByteView view = scratch_.first(slot_bytes_);
  storage_.read(static_cast<offset_t>(slot) * slot_bytes_, view);
  ByteReader r(view);
  const ByteView magic = r.read_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) return std::nullopt;
  ApplyRecord rec;
  rec.seq = r.read_u64le();
  const std::uint8_t kind = r.read_u8();
  if (kind < static_cast<std::uint8_t>(ApplyRecordKind::kCheckpoint) ||
      kind > static_cast<std::uint8_t>(ApplyRecordKind::kDone)) {
    return std::nullopt;
  }
  rec.kind = static_cast<ApplyRecordKind>(kind);
  const std::uint8_t flags = r.read_u8();
  rec.full_image = (flags & kFlagFullImage) != 0;
  rec.artifact_crc = r.read_u32le();
  rec.artifact_size = r.read_u64le();
  rec.meta_from = r.read_u32le();
  rec.meta_hop = r.read_u32le();
  rec.meta_target = r.read_u32le();
  rec.command_index = r.read_u64le();
  rec.substep = r.read_u64le();
  rec.artifact_offset = r.read_u64le();
  rec.adler_state = r.read_u32le();
  rec.undo_to = r.read_u64le();
  const std::uint32_t undo_len = r.read_u32le();
  const std::uint32_t header_len = r.read_u32le();
  if (undo_len > options_.undo_capacity ||
      header_len > options_.header_capacity) {
    return std::nullopt;
  }
  const std::size_t body = kFixedBytes + undo_len + header_len;
  const ByteView undo = r.read_bytes(undo_len);
  const ByteView header = r.read_bytes(header_len);
  const std::uint32_t stored_crc = r.read_u32le();
  if (crc32c(ByteView(view).first(body)) != stored_crc) {
    return std::nullopt;  // torn, stale, or corrupt
  }
  rec.undo.assign(undo.begin(), undo.end());
  rec.header.assign(header.begin(), header.end());
  return rec;
}

std::optional<ApplyRecord> ApplyJournal::newest_for(
    std::uint32_t artifact_crc, std::uint64_t artifact_size) const {
  if (newest_ && newest_->artifact_crc == artifact_crc &&
      newest_->artifact_size == artifact_size) {
    return newest_;
  }
  return std::nullopt;
}

void ApplyJournal::append(ApplyRecord record) {
  if (record.undo.size() > options_.undo_capacity) {
    throw ValidationError("apply journal: undo exceeds configured capacity");
  }
  if (record.header.size() > options_.header_capacity) {
    throw ValidationError("apply journal: header exceeds configured capacity");
  }
  record.seq = next_seq_++;

  ByteWriter w;
  w.write_string(std::string_view(kMagic, 4));
  w.write_u64le(record.seq);
  w.write_u8(static_cast<std::uint8_t>(record.kind));
  w.write_u8(record.full_image ? kFlagFullImage : 0);
  w.write_u32le(record.artifact_crc);
  w.write_u64le(record.artifact_size);
  w.write_u32le(record.meta_from);
  w.write_u32le(record.meta_hop);
  w.write_u32le(record.meta_target);
  w.write_u64le(record.command_index);
  w.write_u64le(record.substep);
  w.write_u64le(record.artifact_offset);
  w.write_u32le(record.adler_state);
  w.write_u64le(record.undo_to);
  w.write_u32le(static_cast<std::uint32_t>(record.undo.size()));
  w.write_u32le(static_cast<std::uint32_t>(record.header.size()));
  w.write_bytes(record.undo);
  w.write_bytes(record.header);
  w.write_u32le(crc32c(w.bytes()));

  // Stage into the caller's scratch, zero-padded to whole pages, so one
  // storage write covers the record and nothing stale survives in the
  // pages it touches.
  const std::size_t padded = round_up(w.size(), options_.page_size);
  const MutByteView out = scratch_.first(padded);
  std::copy(w.bytes().begin(), w.bytes().end(), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(w.size()), out.end(),
            std::uint8_t{0});
  storage_.write((record.seq % 2) * slot_bytes_, out);
  ++writes_;
  newest_ = std::move(record);
}

void ApplyJournal::clear() {
  // Killing the magic is enough to invalidate a slot; zero a whole page
  // per slot so no prefix of the write can leave the magic intact only
  // for the CRC to accidentally verify (it can't — but pages are cheap).
  const std::size_t n = std::min(slot_bytes_, options_.page_size);
  const MutByteView zeros = scratch_.first(std::max<std::size_t>(n, 4));
  std::fill(zeros.begin(), zeros.end(), std::uint8_t{0});
  for (int slot = 0; slot < 2; ++slot) {
    storage_.write(static_cast<offset_t>(slot) * slot_bytes_, zeros);
  }
  newest_.reset();
  next_seq_ = 0;
}

}  // namespace ipd
