// Scratch-space reconstruction: the traditional decoder the paper's §1
// contrasts against. Reads the reference, materialises the version in a
// separate buffer — needs both resident at once.
#pragma once

#include "delta/codec.hpp"
#include "delta/script.hpp"

namespace ipd {

/// Apply `script` to `reference`, producing the version in fresh storage.
/// Works for ANY valid script (commands may be in any order, §3).
/// Throws ValidationError on out-of-bounds commands.
Bytes apply_script(const Script& script, ByteView reference);

/// Apply `script` writing into `version` (pre-sized to the version
/// length); used by the device simulator to control allocation.
void apply_script_into(const Script& script, ByteView reference,
                       MutByteView version);

/// Decode a serialized delta file and apply it. Verifies the container
/// checksums and the version CRC; throws FormatError on mismatch.
Bytes apply_delta(ByteView delta, ByteView reference);

/// Outcome of a non-destructive delta verification.
struct VerifyResult {
  bool ok = false;
  /// Empty when ok; otherwise the first failure, human-readable.
  std::string failure;
  length_t version_length = 0;
  bool in_place_capable = false;  ///< container flag AND Equation 2 hold
};

/// Dry-run a delta against a reference without touching either: decodes,
/// validates, reconstructs into scratch, checks the version CRC, and
/// re-checks the in-place flag against Equation 2. Never throws for
/// verification failures (only for allocation-level errors).
VerifyResult verify_delta(ByteView delta, ByteView reference);

}  // namespace ipd
