// Write-before-read conflict oracle (§4.1).
//
// Given a script in its serial application order, enumerate every WR
// conflict: a copy command whose read interval intersects the write
// interval of an earlier command. An empty conflict list is exactly the
// paper's Equation 2 — the script is in-place reconstructible.
//
// The oracle is the test suite's ground truth: converter output must
// analyze clean, and deliberately conflicting scripts must not.
#pragma once

#include <vector>

#include "delta/script.hpp"

namespace ipd {

struct Conflict {
  std::size_t reader_index;  ///< position of the conflicting copy
  std::size_t writer_index;  ///< position of the earlier writing command
  Interval overlap;          ///< bytes read after being overwritten
};

struct ConflictAnalysis {
  std::vector<Conflict> conflicts;
  /// Total bytes that would be read corrupt.
  length_t corrupt_bytes = 0;

  bool in_place_safe() const noexcept { return conflicts.empty(); }
};

/// Enumerate WR conflicts of `script` under serial application, stopping
/// after `max_conflicts` (the default enumerates all).
ConflictAnalysis analyze_conflicts(
    const Script& script,
    std::size_t max_conflicts = static_cast<std::size_t>(-1));

}  // namespace ipd
