#include "apply/apply.hpp"

#include <algorithm>

#include "apply/oracle.hpp"
#include "core/checksum.hpp"
#include "obs/trace.hpp"

namespace ipd {

void apply_script_into(const Script& script, ByteView reference,
                       MutByteView version) {
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (copy->from + copy->length > reference.size() ||
          copy->to + copy->length > version.size()) {
        throw ValidationError("apply: copy command out of bounds");
      }
      std::copy_n(reference.begin() + static_cast<std::ptrdiff_t>(copy->from),
                  copy->length,
                  version.begin() + static_cast<std::ptrdiff_t>(copy->to));
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      if (add.to + add.length() > version.size()) {
        throw ValidationError("apply: add command out of bounds");
      }
      std::copy(add.data.begin(), add.data.end(),
                version.begin() + static_cast<std::ptrdiff_t>(add.to));
    }
  }
}

Bytes apply_script(const Script& script, ByteView reference) {
  Bytes version(script.version_length());
  apply_script_into(script, reference, version);
  return version;
}

Bytes apply_delta(ByteView delta, ByteView reference) {
  obs::Span span(obs::Stage::kApplyScratch, delta.size());
  const DeltaFile file = deserialize_delta(delta);
  if (file.reference_length != reference.size()) {
    throw FormatError("apply: reference length mismatch (delta expects " +
                      std::to_string(file.reference_length) + ", got " +
                      std::to_string(reference.size()) + ")");
  }
  Bytes version = apply_script(file.script, reference);
  if (crc32c(version) != file.version_crc) {
    throw FormatError("apply: version CRC mismatch after reconstruction");
  }
  return version;
}

VerifyResult verify_delta(ByteView delta, ByteView reference) {
  VerifyResult result;
  try {
    const DeltaFile file = deserialize_delta(delta);
    result.version_length = file.version_length;
    if (file.reference_length != reference.size()) {
      result.failure = "reference length mismatch: delta expects " +
                       std::to_string(file.reference_length) + ", got " +
                       std::to_string(reference.size());
      return result;
    }
    const Bytes version = apply_script(file.script, reference);
    if (crc32c(version) != file.version_crc) {
      result.failure = "version CRC mismatch after reconstruction";
      return result;
    }
    const bool eq2 = analyze_conflicts(file.script).in_place_safe();
    if (file.in_place && !eq2) {
      result.failure =
          "delta claims in-place reconstructibility but violates "
          "Equation 2";
      return result;
    }
    result.in_place_capable = file.in_place && eq2;
    result.ok = true;
  } catch (const Error& e) {
    result.failure = e.what();
  }
  return result;
}

}  // namespace ipd
