// Streaming in-place application: rebuild the new version while the delta
// is still arriving over the network.
//
// The batch path (apply_delta_inplace) needs the whole delta in memory
// before the first byte of the image changes — RAM = delta size. A device
// at the bottom of a slow link can instead apply each command the moment
// its bytes arrive; peak RAM becomes one command (bounded by the largest
// add) plus parser state. The trade: the payload checksum can only be
// verified after the image has already been modified, so a delta torn in
// transit leaves a half-updated image — pair with the journaled updater
// (device/resumable_updater.hpp) when that matters.
//
// In-place safety of the *order* is unchanged: the delta must carry the
// in_place flag, and per-command conflict checking is available.
#pragma once

#include <map>
#include <optional>

#include "delta/codec.hpp"

namespace ipd {

struct StreamApplyOptions {
  /// Track written intervals and throw ConflictError on a write-before-
  /// read violation instead of silently corrupting (small extra memory).
  bool check_conflicts = true;
  /// Require the delta's in_place flag (disable only in tests).
  bool require_inplace_flag = true;
};

class StreamingInplaceApplier {
 public:
  /// `buffer` holds the reference now and the version when finished; it
  /// must be at least max(reference, version) bytes — checked as soon as
  /// the header arrives.
  StreamingInplaceApplier(MutByteView buffer,
                          const StreamApplyOptions& options = {});
  ~StreamingInplaceApplier();

  StreamingInplaceApplier(const StreamingInplaceApplier&) = delete;
  StreamingInplaceApplier& operator=(const StreamingInplaceApplier&) = delete;

  /// Feed the next chunk of the serialized delta (any chunking, including
  /// byte-at-a-time). Applies every command that becomes complete.
  /// Throws FormatError / ValidationError / ConflictError on bad input;
  /// after a throw the applier (and the buffer) are poisoned.
  void feed(ByteView chunk);

  /// Header, once enough bytes have arrived to parse it.
  const std::optional<DeltaHeader>& header() const noexcept {
    return header_;
  }

  /// True when the whole payload has been consumed, the payload adler and
  /// the version CRC have both verified, and the buffer holds the version.
  bool finished() const noexcept { return finished_; }

  /// Commands applied so far.
  std::size_t commands_applied() const noexcept { return commands_; }

  /// Peak bytes buffered inside the applier (parser backlog), for the
  /// RAM-accounting benches.
  std::size_t peak_buffered() const noexcept { return peak_buffered_; }

 private:
  void try_parse_header_bytes();
  void drain_commands();
  void apply_command(const Command& cmd);
  void finish();

  MutByteView buffer_;
  StreamApplyOptions options_;

  Bytes head_pending_;  // bytes accumulated before the header parsed
  std::optional<DeltaHeader> header_;
  std::optional<StreamingCommandDecoder> decoder_;
  std::uint32_t payload_adler_ = 1;  // running adler over payload bytes
  std::uint64_t payload_seen_ = 0;

  // Conflict oracle state: union of written intervals (first -> last).
  std::map<offset_t, offset_t> written_;
  std::size_t command_index_ = 0;

  std::size_t commands_ = 0;
  std::size_t peak_buffered_ = 0;
  bool finished_ = false;
  bool poisoned_ = false;
};

/// Convenience: apply `delta` by feeding it in `chunk_size` pieces.
/// Returns the version length. Used by tests and the device updater.
length_t apply_delta_inplace_streaming(ByteView delta, MutByteView buffer,
                                       std::size_t chunk_size,
                                       const StreamApplyOptions& options = {});

}  // namespace ipd
