#include "apply/stream_applier.hpp"

#include <algorithm>

#include "apply/inplace_apply.hpp"
#include "core/checksum.hpp"

namespace ipd {

StreamingInplaceApplier::StreamingInplaceApplier(
    MutByteView buffer, const StreamApplyOptions& options)
    : buffer_(buffer), options_(options) {}

StreamingInplaceApplier::~StreamingInplaceApplier() = default;

void StreamingInplaceApplier::feed(ByteView chunk) {
  if (poisoned_) {
    throw ValidationError("streaming applier: poisoned by earlier error");
  }
  try {
    if (!header_) {
      head_pending_.insert(head_pending_.end(), chunk.begin(), chunk.end());
      peak_buffered_ = std::max(peak_buffered_, head_pending_.size());
      try_parse_header_bytes();
      return;
    }
    if (finished_) {
      if (!chunk.empty()) {
        throw FormatError("trailing garbage after payload");
      }
      return;
    }
    if (payload_seen_ + chunk.size() > header_->payload_length) {
      throw FormatError("trailing garbage after payload");
    }
    payload_adler_ = adler32(chunk, payload_adler_);
    payload_seen_ += chunk.size();
    decoder_->feed(chunk);
    drain_commands();
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void StreamingInplaceApplier::try_parse_header_bytes() {
  const auto parsed = ipd::try_parse_header(head_pending_);
  if (!parsed) {
    return;  // need more bytes
  }
  header_ = parsed->first;
  if (header_->compress_payload) {
    throw ValidationError(
        "streaming applier: compressed payloads cannot be applied "
        "incrementally; use the batch path or ship uncompressed");
  }
  if (options_.require_inplace_flag && !header_->in_place) {
    throw ValidationError(
        "streaming applier: delta is not marked in-place reconstructible");
  }
  if (header_->reference_length > buffer_.size() ||
      header_->version_length > buffer_.size()) {
    throw ValidationError(
        "streaming applier: buffer must hold max(reference, version)");
  }
  decoder_.emplace(header_->format, header_->version_length);

  // Re-route any bytes that arrived past the header into the payload path.
  const Bytes rest(head_pending_.begin() +
                       static_cast<std::ptrdiff_t>(parsed->second),
                   head_pending_.end());
  head_pending_.clear();
  head_pending_.shrink_to_fit();
  if (header_->payload_length == 0 && rest.empty()) {
    finish();
    return;
  }
  feed(rest);
}

void StreamingInplaceApplier::drain_commands() {
  while (auto cmd = decoder_->next()) {
    apply_command(*cmd);
    ++commands_;
  }
  peak_buffered_ = std::max(peak_buffered_, decoder_->buffered());
  if (decoder_->consumed() == header_->payload_length &&
      payload_seen_ == header_->payload_length) {
    if (decoder_->buffered() != 0) {
      throw FormatError("garbage between last command and payload end");
    }
    finish();
  } else if (payload_seen_ == header_->payload_length &&
             decoder_->buffered() != 0) {
    throw FormatError("payload ends inside a command");
  }
}

void StreamingInplaceApplier::apply_command(const Command& cmd) {
  const length_t len = command_length(cmd);
  if (len == 0) return;
  const Interval w = command_write_interval(cmd);
  if (w.last >= header_->version_length) {
    throw ValidationError("streaming applier: command writes past version");
  }

  if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
    if (copy->from + copy->length > header_->reference_length) {
      throw ValidationError("streaming applier: copy reads past reference");
    }
    if (options_.check_conflicts) {
      const Interval read = copy->read_interval();
      auto it = written_.upper_bound(read.last);
      if (it != written_.begin() && std::prev(it)->second >= read.first) {
        throw ConflictError(
            "streaming applier: write-before-read conflict at command " +
            std::to_string(command_index_));
      }
    }
    overlapping_copy(buffer_, copy->from, copy->to, copy->length);
  } else {
    const AddCommand& add = std::get<AddCommand>(cmd);
    std::copy(add.data.begin(), add.data.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(add.to));
  }
  if (options_.check_conflicts) {
    written_[w.first] = w.last;
  }
  ++command_index_;
}

void StreamingInplaceApplier::finish() {
  if (payload_adler_ != header_->payload_adler &&
      header_->payload_length > 0) {
    throw FormatError("streaming applier: payload checksum mismatch");
  }
  const ByteView version =
      ByteView(buffer_).first(static_cast<std::size_t>(header_->version_length));
  if (crc32c(version) != header_->version_crc) {
    throw FormatError(
        "streaming applier: version CRC mismatch after reconstruction");
  }
  finished_ = true;
}

length_t apply_delta_inplace_streaming(ByteView delta, MutByteView buffer,
                                       std::size_t chunk_size,
                                       const StreamApplyOptions& options) {
  if (chunk_size == 0) {
    throw ValidationError("streaming apply: chunk_size must be >= 1");
  }
  StreamingInplaceApplier applier(buffer, options);
  std::size_t pos = 0;
  while (pos < delta.size()) {
    const std::size_t n = std::min(chunk_size, delta.size() - pos);
    applier.feed(delta.subspan(pos, n));
    pos += n;
  }
  if (!applier.finished()) {
    throw FormatError("streaming apply: delta ended mid-stream");
  }
  return applier.header()->version_length;
}

}  // namespace ipd
