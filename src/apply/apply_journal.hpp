// Write-ahead progress journal for power-loss-safe in-place application.
//
// In-place reconstruction destroys the only copy of the reference as it
// runs (§1); a device that loses power mid-apply holds neither version.
// The journal makes the apply a sequence of durable checkpoints:
//
//  * Two fixed-size, page-aligned slots alternate by sequence number.
//    Record seq goes to slot seq % 2, so a torn write of record k leaves
//    record k-1 intact in the other slot — recovery always finds the
//    newest record whose CRC-32C verifies.
//  * A record asserts "every command before `command_index` is durably
//    applied; the in-flight work may be partially applied" and carries
//    everything a rebooted device needs to resume: the artifact identity
//    (CRC-32C + size), the hop metadata for re-issuing a network RESUME,
//    the artifact byte offset to resume the download at, the running
//    payload checksum at that boundary, the raw container header (so the
//    delta can be re-parsed without re-fetching its first bytes), and a
//    bounded undo window — the pre-image of the region the in-flight
//    sub-step overwrites, restoring which makes the sub-step re-runnable.
//  * Records are CRC-32C framed; anything torn, stale, or foreign simply
//    fails validation and is ignored.
//
// The journal is storage-agnostic: it talks to a JournalStorage (a spare
// flash region, a file, a test vector) and never allocates — callers
// provide a scratch buffer of slot_bytes() so device RAM accounting stays
// honest. Consumers: device/resumable_updater (staged apply) and
// device/stream_updater (streaming apply + campaign devices).
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"

namespace ipd {

/// Abstract bounded byte store the journal lives in. Implementations:
/// a FlashDevice region (device/flash_journal.hpp), plain memory in
/// tests. Writes may be torn by power loss — validation handles it.
class JournalStorage {
 public:
  virtual ~JournalStorage() = default;
  virtual std::size_t size() const = 0;
  virtual void read(offset_t offset, MutByteView out) = 0;
  virtual void write(offset_t offset, ByteView data) = 0;
};

/// Trivial in-memory storage for tests and host-side tooling.
class MemoryJournalStorage final : public JournalStorage {
 public:
  explicit MemoryJournalStorage(std::size_t size) : bytes_(size, 0) {}

  std::size_t size() const override { return bytes_.size(); }
  void read(offset_t offset, MutByteView out) override;
  void write(offset_t offset, ByteView data) override;

  Bytes& bytes() noexcept { return bytes_; }

 private:
  Bytes bytes_;
};

struct ApplyJournalOptions {
  /// Slot size is rounded up to a multiple of this (flash page size), so
  /// the two slots never share a page and a torn slot write cannot touch
  /// its sibling.
  std::size_t page_size = 256;
  /// Largest undo (pre-image) payload a record may carry; typically the
  /// updater's copy window size.
  std::size_t undo_capacity = 4096;
  /// Largest raw container header a record may carry (0 when the
  /// consumer re-stages the artifact and never needs it back).
  std::size_t header_capacity = 256;
};

enum class ApplyRecordKind : std::uint8_t {
  kCheckpoint = 1,  ///< commands [0, command_index) durably applied
  kSubstep = 2,     ///< inside command_index: sub-steps [0, substep) done,
                    ///< undo holds the in-flight sub-step's pre-image
  kDone = 3,        ///< the whole artifact applied and verified
};

/// One journal record. See the header comment for field semantics.
struct ApplyRecord {
  std::uint64_t seq = 0;  ///< assigned by append()
  ApplyRecordKind kind = ApplyRecordKind::kCheckpoint;
  bool full_image = false;     ///< artifact is a raw image, not a delta
  std::uint32_t artifact_crc = 0;   ///< CRC-32C of the whole artifact
  std::uint64_t artifact_size = 0;  ///< artifact bytes
  std::uint32_t meta_from = 0;      ///< hop source release
  std::uint32_t meta_hop = 0;       ///< hop target release
  std::uint32_t meta_target = 0;    ///< original requested release (RESUME)
  std::uint64_t command_index = 0;  ///< first not-durably-applied command
  std::uint64_t substep = 0;        ///< sub-step within command_index
  /// Artifact byte offset of the first byte the resuming consumer must
  /// re-fetch (the in-flight command's first byte).
  std::uint64_t artifact_offset = 0;
  /// Running Adler-32 of the delta payload at artifact_offset (full
  /// images: running CRC-32C of the image prefix instead).
  std::uint32_t adler_state = 1;
  std::uint64_t undo_to = 0;  ///< storage offset the undo restores
  Bytes undo;
  Bytes header;  ///< raw container header bytes (delta artifacts)
};

/// Two-slot alternating journal over a JournalStorage.
class ApplyJournal {
 public:
  /// Scans the storage for the newest valid record. `scratch` must hold
  /// at least slot_bytes(options) bytes and outlive the journal — it is
  /// the only working memory the journal ever uses (device RAM
  /// accounting: allocate it from the RamArena).
  ApplyJournal(JournalStorage& storage, MutByteView scratch,
               const ApplyJournalOptions& options);

  /// Bytes one slot occupies (fixed fields + capacities + CRC, rounded
  /// up to page_size); the storage must hold at least twice this.
  static std::size_t slot_bytes(const ApplyJournalOptions& options) noexcept;

  const ApplyJournalOptions& options() const noexcept { return options_; }

  /// Newest valid record found at construction or written since, for any
  /// artifact. Stale records from a previous artifact are visible here —
  /// identity-check before trusting (or use newest_for).
  const std::optional<ApplyRecord>& newest() const noexcept {
    return newest_;
  }

  /// newest(), but only if it matches this artifact's identity.
  std::optional<ApplyRecord> newest_for(std::uint32_t artifact_crc,
                                        std::uint64_t artifact_size) const;

  /// Durably append `record` (seq is assigned internally). Throws
  /// ValidationError when undo/header exceed the configured capacities.
  void append(ApplyRecord record);

  /// Invalidate both slots (start of a fresh artifact, or provisioning).
  /// After clear() the journal holds no record and seq restarts at 0.
  void clear();

  std::uint64_t records_written() const noexcept { return writes_; }

 private:
  std::optional<ApplyRecord> load_slot(int slot);

  JournalStorage& storage_;
  MutByteView scratch_;
  ApplyJournalOptions options_;
  std::size_t slot_bytes_ = 0;
  std::optional<ApplyRecord> newest_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace ipd
