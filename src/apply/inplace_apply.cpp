#include "apply/inplace_apply.hpp"

#include <algorithm>
#include <map>

#include "core/checksum.hpp"
#include "obs/trace.hpp"

namespace ipd {
namespace {

void check_bounds(const Script& script, std::size_t buffer_size,
                  length_t reference_length, length_t version_length) {
  if (buffer_size < reference_length || buffer_size < version_length) {
    throw ValidationError(
        "in-place apply: buffer must hold max(reference, version)");
  }
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (copy->from + copy->length > reference_length) {
        throw ValidationError("in-place apply: copy reads past reference");
      }
    }
    const Interval w = command_write_interval(cmd);
    if (w.last >= version_length) {
      throw ValidationError("in-place apply: command writes past version");
    }
  }
}

}  // namespace

void overlapping_copy(MutByteView buffer, offset_t from, offset_t to,
                      length_t length) noexcept {
  if (length == 0 || from == to) {
    return;
  }
  std::uint8_t* data = buffer.data();
  if (from >= to) {
    // Left-to-right: the read cursor stays ahead of the write cursor, so
    // no byte is overwritten before it is read (§4.1).
    for (length_t i = 0; i < length; ++i) {
      data[to + i] = data[from + i];
    }
  } else {
    // Right-to-left: symmetric argument when writing forwards.
    for (length_t i = length; i > 0; --i) {
      data[to + i - 1] = data[from + i - 1];
    }
  }
}

void apply_inplace(const Script& script, MutByteView buffer,
                   length_t reference_length, length_t version_length) {
  check_bounds(script, buffer.size(), reference_length, version_length);
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      overlapping_copy(buffer, copy->from, copy->to, copy->length);
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      std::copy(add.data.begin(), add.data.end(),
                buffer.begin() + static_cast<std::ptrdiff_t>(add.to));
    }
  }
}

void apply_inplace_checked(const Script& script, MutByteView buffer,
                           length_t reference_length,
                           length_t version_length) {
  check_bounds(script, buffer.size(), reference_length, version_length);
  // Union of intervals already written, as disjoint [first -> last].
  std::map<offset_t, offset_t> written;

  const auto intersects_written = [&](const Interval& read) {
    auto it = written.upper_bound(read.last);
    if (it == written.begin()) return false;
    --it;
    return it->second >= read.first;
  };

  std::size_t index = 0;
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (intersects_written(copy->read_interval())) {
        throw ConflictError(
            "write-before-read conflict at command " + std::to_string(index) +
            ": copy reads an interval already overwritten (Equation 2 "
            "violated; this delta is not in-place reconstructible)");
      }
      overlapping_copy(buffer, copy->from, copy->to, copy->length);
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      std::copy(add.data.begin(), add.data.end(),
                buffer.begin() + static_cast<std::ptrdiff_t>(add.to));
    }
    const Interval w = command_write_interval(cmd);
    written[w.first] = w.last;
    ++index;
  }
}

length_t apply_delta_inplace(ByteView delta, MutByteView buffer) {
  obs::Span span(obs::Stage::kApplyInplace, delta.size());
  const DeltaFile file = deserialize_delta(delta);
  if (!file.in_place) {
    throw ValidationError(
        "delta file is not marked in-place reconstructible; apply it with "
        "scratch space or convert it first");
  }
  if (file.reference_length > buffer.size() ||
      file.version_length > buffer.size()) {
    throw ValidationError("in-place apply: buffer too small");
  }
  apply_inplace(file.script, buffer, file.reference_length,
                file.version_length);
  const ByteView version =
      ByteView(buffer).first(static_cast<std::size_t>(file.version_length));
  if (crc32c(version) != file.version_crc) {
    throw FormatError(
        "in-place apply: version CRC mismatch after reconstruction");
  }
  return file.version_length;
}

}  // namespace ipd
