// Power-loss-safe *streaming* in-place apply: the journaled sibling of
// apply/stream_applier.hpp, writing straight to FlashDevice storage while
// the artifact is still arriving over the network.
//
// The staged path (device/resumable_updater.hpp) downloads the whole
// delta before the first flash write — RAM = artifact size. A constrained
// device streams instead: each command is applied the moment its bytes
// arrive, and the apply journal (apply/apply_journal.hpp) makes that
// survivable:
//
//  * Replay-idempotent batching. Equation 2 guarantees no command writes
//    over a LATER command's reads, but says nothing about the reverse —
//    command j may overwrite what command i < j already read. A batch of
//    commands k..m-1 shares one checkpoint record iff no member's write
//    intersects any member's read set and no member self-overlaps; then
//    replaying the whole batch from k after a crash anywhere inside it is
//    byte-exact. Checkpoints are written BETWEEN batches, so the newest
//    valid record always names a batch whose predecessors fully landed.
//  * Self-overlapping copies are never idempotent: they are split into
//    window-sized sub-steps (§4.1 direction, device/updater.hpp), each
//    preceded by a kSubstep record carrying the destination window's
//    pre-image. Restoring that undo makes the sub-step re-runnable.
//  * Every record stores the artifact byte offset of the first command
//    that must be re-fetched plus the running payload Adler-32 at that
//    boundary, so recovery composes with the wire protocol's byte-exact
//    RESUME: the rebooted device asks the server for exactly the suffix
//    it needs and verifies the payload checksum as if never interrupted.
//  * Full images stream through the same journal (kind flag full_image):
//    raw chunks land at their offset, checkpoints every
//    full_image_checkpoint_bytes carry the running CRC-32C, and rewrites
//    after a torn write are idempotent.
//
// Trust note: the staged path can run the static Verifier over the whole
// artifact before the first flash write; a streaming device cannot. It
// gets incremental gating instead — header validation, per-command
// bounds, and the write-before-read conflict oracle run BEFORE each
// flash write — while the server-side Verifier (DeltaService
// verify_artifacts) remains the authoritative pre-serve gate. See
// docs/DEVICE.md.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "apply/apply_journal.hpp"
#include "delta/codec.hpp"
#include "device/flash_device.hpp"
#include "device/flash_journal.hpp"
#include "device/updater.hpp"

namespace ipd {

struct StreamUpdaterOptions {
  /// Copy window = undo capacity = largest journaled pre-image.
  std::size_t window_bytes = 4096;
  /// Commands per replay batch; smaller = more journal writes, less
  /// re-fetched artifact suffix after a power cut.
  std::size_t checkpoint_commands = 32;
  /// Largest raw container header a journal record can carry.
  std::size_t header_capacity = 256;
  /// Full-image mode: checkpoint cadence in artifact bytes.
  std::uint64_t full_image_checkpoint_bytes = 64u << 10;
  /// Verify the reconstruction against the artifact checksum by
  /// streaming storage back through the window before the done record.
  bool verify_crc = true;
  /// Track written intervals and throw ConflictError on a write-before-
  /// read violation instead of corrupting (defense in depth behind the
  /// server-side Verifier).
  bool check_conflicts = true;
};

/// Identity and hop metadata of the artifact being applied — journaled in
/// every record so a rebooted device can re-issue the exact network
/// RESUME without re-learning anything from the server.
struct StreamArtifactInfo {
  std::uint32_t artifact_crc = 0;   ///< CRC-32C of the whole artifact
  std::uint64_t artifact_size = 0;  ///< artifact bytes
  bool full_image = false;
  std::uint32_t meta_from = 0;    ///< hop source release
  std::uint32_t meta_hop = 0;     ///< hop target release
  std::uint32_t meta_target = 0;  ///< original requested release
};

/// What the journal says about the device's update state, before any
/// network contact (StreamingDeviceUpdater::probe).
struct StreamApplyProbe {
  bool done = false;  ///< artifact fully applied and verified
  StreamArtifactInfo info;
  /// Artifact byte to RESUME the download at (== artifact_size if done).
  std::uint64_t resume_offset = 0;
};

class StreamingDeviceUpdater {
 public:
  /// Begin — or, when the journal holds a matching in-flight record,
  /// resume — applying the artifact described by `info`. Resuming
  /// restores the journaled undo window; feed() must then start at
  /// next_offset(). Records for other artifacts are left in place (the
  /// slot alternation retires them) — they are the device's durable
  /// memory of its current release until our first record lands.
  StreamingDeviceUpdater(FlashDevice& device, const JournalRegion& journal,
                         const StreamArtifactInfo& info,
                         const StreamUpdaterOptions& options = {});

  StreamingDeviceUpdater(const StreamingDeviceUpdater&) = delete;
  StreamingDeviceUpdater& operator=(const StreamingDeviceUpdater&) = delete;

  /// Inspect the journal without touching it: the newest valid record's
  /// artifact identity and resume offset, or nullopt when the journal
  /// holds nothing. The same options used for applying must be passed
  /// (the slot layout depends on them).
  static std::optional<StreamApplyProbe> probe(
      FlashDevice& device, const JournalRegion& journal,
      const StreamUpdaterOptions& options = {});

  /// Invalidate the journal (provisioning / test reset). NOT part of the
  /// normal hop sequence — a completed hop's done record is the device's
  /// only durable memory of the release it now runs.
  static void clear(FlashDevice& device, const JournalRegion& journal,
                    const StreamUpdaterOptions& options = {});

  /// Feed the next artifact bytes, starting at next_offset(). Applies
  /// every command that becomes complete and journals checkpoints as
  /// batches seal. Throws FormatError/ValidationError/ConflictError on a
  /// bad artifact, DeviceError on resource violations, and lets
  /// FlashDevice::PowerFailure escape (construct a fresh updater from
  /// the journal to resume). After any throw the instance is poisoned.
  void feed(ByteView chunk);

  /// True once the artifact is fully applied, checksums verified, and
  /// the done record written.
  bool finished() const noexcept { return finished_; }

  /// Artifact byte the next feed() must start at (in-RAM high-water;
  /// resets to the last durable checkpoint after a reboot).
  std::uint64_t next_offset() const noexcept { return stream_pos_; }

  /// Artifact byte the last durable checkpoint re-fetches from — what a
  /// reboot would come back to.
  std::uint64_t resume_offset() const noexcept { return durable_offset_; }

  bool resumed() const noexcept { return resumed_; }
  std::size_t commands_applied() const noexcept { return commands_; }
  std::uint64_t journal_records() const noexcept;
  const std::optional<DeltaHeader>& header() const noexcept {
    return header_;
  }

 private:
  static ApplyJournalOptions journal_options(
      const FlashDevice& device, const StreamUpdaterOptions& options);

  void feed_full_image(ByteView chunk);
  void feed_delta(ByteView chunk);
  void ingest_payload(ByteView chunk);
  void drain_commands();
  void process_command(const Command& cmd, std::uint64_t payload_pre);
  void run_substeps(const CopyCommand& copy, std::uint64_t command_index,
                    std::uint64_t payload_pre);
  bool try_join(const Interval& write) const;
  void force_seal(std::uint64_t command_index, std::uint64_t payload_offset);
  std::uint32_t adler_at(std::uint64_t payload_offset);
  void append_record(ApplyRecordKind kind, std::uint64_t command_index,
                     std::uint64_t substep, std::uint64_t artifact_offset,
                     std::uint32_t adler_state, offset_t undo_to,
                     ByteView undo, ByteView header_blob);
  void finish_delta();
  void finish_full_image();
  void verify_image_crc(std::uint64_t length, std::uint32_t expected,
                        const char* what);

  void recover(const ApplyRecord& rec);
  void validate_header();

  FlashDevice& device_;
  StreamArtifactInfo info_;
  StreamUpdaterOptions options_;
  ApplyJournalOptions jopts_;
  offset_t journal_offset_ = 0;  ///< for image-overlap checks
  RamArena::Allocation window_;
  RamArena::Allocation scratch_;
  FlashJournalStorage storage_;
  ApplyJournal journal_;

  // Stream cursors (absolute artifact offsets).
  std::uint64_t stream_pos_ = 0;     ///< next byte feed() expects
  std::uint64_t durable_offset_ = 0; ///< newest record's artifact_offset

  // Delta-mode state.
  Bytes head_pending_;  ///< bytes accumulated before the header parsed
  std::optional<DeltaHeader> header_;
  Bytes header_blob_;   ///< raw container header (journaled per record)
  std::size_t header_len_ = 0;
  std::optional<StreamingCommandDecoder> decoder_;
  std::uint64_t base_payload_ = 0;  ///< payload offset feeding started at

  // Boundary Adler-32: folded exactly to command boundaries via a local
  // copy of not-yet-folded payload bytes (chunks cross boundaries, so
  // the running checksum cannot be taken over raw chunks).
  Bytes pending_payload_;
  std::uint64_t pending_start_ = 0;  ///< payload offset of pending[0]
  std::uint64_t adler_pos_ = 0;      ///< payload offset adler is folded to
  std::uint32_t boundary_adler_ = 1;

  // Batch state (see header comment). durable_checkpoint_index_ tracks
  // whether the newest journal record is a checkpoint at that command —
  // sealing the same boundary twice is skipped, and (critically) a
  // resume at a kSubstep record must NOT be preceded by a fresh
  // checkpoint, which would license replay from sub-step 0.
  std::uint64_t next_command_index_ = 0;
  std::optional<std::uint64_t> durable_checkpoint_index_;
  std::vector<Interval> batch_reads_;
  std::size_t batch_count_ = 0;
  std::optional<std::uint64_t> pending_resume_substep_;

  // Conflict oracle: union of written intervals (first -> last).
  std::map<offset_t, offset_t> written_;

  // Full-image mode state.
  std::uint32_t image_crc_state_ = 0;
  std::uint64_t last_image_checkpoint_ = 0;

  std::size_t commands_ = 0;
  bool resumed_ = false;
  bool finished_ = false;
  bool poisoned_ = false;
};

}  // namespace ipd
