#include "device/flash_device.hpp"

#include <algorithm>

namespace ipd {

FlashDevice::FlashDevice(std::size_t storage_bytes, std::size_t page_size,
                         std::size_t ram_budget)
    : storage_(storage_bytes), page_size_(page_size), ram_(ram_budget) {
  if (page_size == 0) {
    throw DeviceError("page size must be >= 1");
  }
}

void FlashDevice::load_image(ByteView image) {
  if (image.size() > storage_.size()) {
    throw DeviceError("image larger than device storage");
  }
  std::copy(image.begin(), image.end(), storage_.begin());
}

void FlashDevice::check_range(offset_t offset, std::size_t size) const {
  if (offset + size > storage_.size()) {
    throw DeviceError("storage access out of range: [" +
                      std::to_string(offset) + ", " +
                      std::to_string(offset + size) + ") > " +
                      std::to_string(storage_.size()));
  }
}

std::uint64_t FlashDevice::pages_in(offset_t offset,
                                    std::size_t size) const noexcept {
  if (size == 0) return 0;
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + size - 1) / page_size_;
  return last - first + 1;
}

void FlashDevice::read(offset_t offset, MutByteView out) {
  check_range(offset, out.size());
  std::copy_n(storage_.begin() + static_cast<std::ptrdiff_t>(offset),
              out.size(), out.begin());
  bytes_read_ += out.size();
  pages_read_ += pages_in(offset, out.size());
}

void FlashDevice::write(offset_t offset, ByteView data) {
  check_range(offset, data.size());
  if (fail_armed_ && data.size() > fail_after_) {
    // Tear the write: only the first fail_after_ bytes reach storage.
    const std::size_t landed = static_cast<std::size_t>(fail_after_);
    std::copy_n(data.begin(), landed,
                storage_.begin() + static_cast<std::ptrdiff_t>(offset));
    bytes_written_ += landed;
    pages_written_ += pages_in(offset, landed);
    fail_armed_ = false;
    fail_after_ = 0;
    throw PowerFailure();
  }
  std::copy(data.begin(), data.end(),
            storage_.begin() + static_cast<std::ptrdiff_t>(offset));
  bytes_written_ += data.size();
  pages_written_ += pages_in(offset, data.size());
  if (fail_armed_) {
    fail_after_ -= data.size();
  }
}

void FlashDevice::inject_power_failure_after(std::uint64_t bytes) noexcept {
  fail_armed_ = true;
  fail_after_ = bytes;
}

void FlashDevice::clear_power_failure() noexcept {
  fail_armed_ = false;
  fail_after_ = 0;
}

void FlashDevice::reset_stats() noexcept {
  bytes_read_ = 0;
  bytes_written_ = 0;
  pages_read_ = 0;
  pages_written_ = 0;
}

}  // namespace ipd
