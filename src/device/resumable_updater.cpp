#include "device/resumable_updater.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/buffer.hpp"
#include "core/checksum.hpp"
#include "delta/codec.hpp"

namespace ipd {
namespace {

constexpr char kJournalMagic[4] = {'I', 'P', 'D', 'J'};
constexpr std::uint32_t kDoneStep = 0xFFFFFFFFu;

// Fixed part of a journal record; `backup_len` bytes of backup follow,
// then a CRC-32C of everything before it.
struct RecordHeader {
  std::uint64_t seq = 0;
  std::uint32_t delta_adler = 0;
  std::uint32_t step = 0;
  std::uint64_t backup_to = 0;
  std::uint32_t backup_len = 0;
};

constexpr std::size_t kRecordHeaderBytes = 4 + 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kRecordTrailerBytes = 4;  // crc

std::size_t slot_capacity(std::size_t window_bytes) {
  return kRecordHeaderBytes + window_bytes + kRecordTrailerBytes;
}

Bytes encode_record(const RecordHeader& header, ByteView backup) {
  ByteWriter w;
  w.write_string(std::string_view(kJournalMagic, 4));
  w.write_u64le(header.seq);
  w.write_u32le(header.delta_adler);
  w.write_u32le(header.step);
  w.write_u64le(header.backup_to);
  w.write_u32le(static_cast<std::uint32_t>(backup.size()));
  w.write_bytes(backup);
  w.write_u32le(crc32c(w.bytes()));
  return w.take();
}

struct DecodedRecord {
  RecordHeader header;
  Bytes backup;
};

std::optional<DecodedRecord> decode_record(ByteView slot) {
  if (slot.size() < kRecordHeaderBytes + kRecordTrailerBytes) {
    return std::nullopt;
  }
  ByteReader r(slot);
  const ByteView magic = r.read_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kJournalMagic)) {
    return std::nullopt;
  }
  DecodedRecord rec;
  rec.header.seq = r.read_u64le();
  rec.header.delta_adler = r.read_u32le();
  rec.header.step = r.read_u32le();
  rec.header.backup_to = r.read_u64le();
  rec.header.backup_len = r.read_u32le();
  if (rec.header.backup_len >
      slot.size() - kRecordHeaderBytes - kRecordTrailerBytes) {
    return std::nullopt;
  }
  const ByteView backup = r.read_bytes(rec.header.backup_len);
  const std::uint32_t stored_crc = r.read_u32le();
  if (crc32c(slot.first(kRecordHeaderBytes + rec.header.backup_len)) !=
      stored_crc) {
    return std::nullopt;  // torn or stale record
  }
  rec.backup.assign(backup.begin(), backup.end());
  return rec;
}

/// One unit of journaled work (see header comment).
struct Step {
  offset_t from = 0;       // copy source (unused for adds)
  offset_t to = 0;
  length_t length = 0;
  const AddCommand* add = nullptr;  // non-null for add steps
  bool needs_backup = false;        // self-overlapping copy sub-step
};

std::vector<Step> plan_steps(const Script& script,
                             std::size_t window_bytes) {
  std::vector<Step> steps;
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (!copy->self_overlaps()) {
        steps.push_back(Step{copy->from, copy->to, copy->length, nullptr,
                             false});
        continue;
      }
      // Split into window sub-steps in the §4.1 direction; each sub-step
      // journals a backup of its destination window.
      const length_t l = copy->length;
      const length_t w = window_bytes;
      if (copy->from >= copy->to) {
        for (length_t off = 0; off < l; off += w) {
          const length_t n = std::min<length_t>(w, l - off);
          steps.push_back(Step{copy->from + off, copy->to + off, n, nullptr,
                               true});
        }
      } else {
        for (length_t end = l; end > 0;) {
          const length_t n = std::min<length_t>(w, end);
          const length_t off = end - n;
          steps.push_back(Step{copy->from + off, copy->to + off, n, nullptr,
                               true});
          end = off;
        }
      }
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      steps.push_back(Step{0, add.to, add.length(), &add, false});
    }
  }
  return steps;
}

}  // namespace

void clear_journal(FlashDevice& device, const JournalRegion& journal) {
  const Bytes zeros(std::min<std::size_t>(journal.size, 64), 0);
  device.write(journal.offset, zeros);
}

ResumableUpdateResult apply_update_resumable(FlashDevice& device,
                                             ByteView delta,
                                             const ChannelModel& channel,
                                             const JournalRegion& journal,
                                             const UpdaterOptions& options) {
  ResumableUpdateResult result;
  result.update.delta_bytes = delta.size();
  result.update.download_seconds = channel.transfer_seconds(delta.size());

  // Stage the delta and parse it.
  RamArena::Allocation staged = device.ram().allocate(delta.size());
  std::copy(delta.begin(), delta.end(), staged.data());
  const DeltaFile file = deserialize_delta(staged.view());
  if (!file.in_place) {
    throw ValidationError(
        "resumable updater: delta is not marked in-place reconstructible");
  }
  const std::uint64_t image_extent =
      std::max(file.reference_length, file.version_length);
  if (image_extent > device.storage_size()) {
    throw DeviceError("resumable updater: image does not fit storage");
  }

  // Journal region checks.
  const std::size_t slot = slot_capacity(options.window_bytes);
  if (journal.size < 2 * slot) {
    throw DeviceError("resumable updater: journal region smaller than two "
                      "slots (" + std::to_string(2 * slot) + " bytes)");
  }
  if (journal.offset < image_extent ||
      journal.offset + journal.size > device.storage_size()) {
    throw DeviceError(
        "resumable updater: journal region overlaps the image area or "
        "exceeds storage");
  }

  const std::uint32_t delta_sum = adler32(delta);
  const std::vector<Step> steps = plan_steps(file.script,
                                             options.window_bytes);

  RamArena::Allocation window = device.ram().allocate(options.window_bytes);
  RamArena::Allocation slot_buf = device.ram().allocate(slot);

  // Recovery: find the newest valid record for this delta.
  std::size_t start_step = 0;
  {
    std::optional<DecodedRecord> best;
    for (int s = 0; s < 2; ++s) {
      device.read(journal.offset + static_cast<offset_t>(s) * slot,
                  slot_buf.view());
      auto rec = decode_record(slot_buf.view());
      if (rec && rec->header.delta_adler == delta_sum &&
          (!best || rec->header.seq > best->header.seq)) {
        best = std::move(rec);
      }
    }
    if (best) {
      result.resumed = true;
      if (best->header.step == kDoneStep) {
        start_step = steps.size();  // nothing left but verification
      } else {
        if (best->header.step >= steps.size()) {
          throw DeviceError("resumable updater: journal step out of range");
        }
        // Undo the possibly-torn step by restoring its backup.
        if (!best->backup.empty()) {
          device.write(best->header.backup_to, best->backup);
        }
        start_step = best->header.step;
      }
    }
  }
  result.steps_replayed = start_step;

  const std::uint64_t pages_before = device.pages_touched_write();
  const std::uint64_t bytes_before = device.bytes_written();

  const auto write_record = [&](std::uint64_t seq, std::uint32_t step,
                                offset_t backup_to, ByteView backup) {
    RecordHeader header;
    header.seq = seq;
    header.delta_adler = delta_sum;
    header.step = step;
    header.backup_to = backup_to;
    const Bytes record = encode_record(header, backup);
    device.write(journal.offset + (seq % 2) * slot, record);
    ++result.journal_records;
  };

  for (std::size_t k = start_step; k < steps.size(); ++k) {
    const Step& step = steps[k];
    if (step.needs_backup) {
      // Save the destination window so a torn execution can be undone.
      const MutByteView dst =
          window.view().first(static_cast<std::size_t>(step.length));
      device.read(step.to, dst);
      write_record(k, static_cast<std::uint32_t>(k), step.to, dst);
      // Apply: sub-step fits entirely in the window, so one read+write.
      device.read(step.from, dst);
      device.write(step.to, dst);
    } else {
      write_record(k, static_cast<std::uint32_t>(k), 0, {});
      if (step.add != nullptr) {
        device.write(step.to, step.add->data);
      } else {
        device_windowed_copy(device, window.view(), step.from, step.to,
                             step.length);
      }
    }
  }

  if (start_step < steps.size() || !result.resumed) {
    write_record(steps.size(), kDoneStep, 0, {});
  }

  result.update.new_image_length = file.version_length;
  result.update.storage_bytes_written = device.bytes_written() - bytes_before;
  result.update.storage_pages_written =
      device.pages_touched_write() - pages_before;

  if (options.verify_crc) {
    Crc32c crc;
    length_t done = 0;
    while (done < file.version_length) {
      const std::size_t n = static_cast<std::size_t>(std::min<length_t>(
          window.size(), file.version_length - done));
      const MutByteView chunk = window.view().first(n);
      device.read(done, chunk);
      crc.update(chunk);
      done += n;
    }
    if (crc.value() != file.version_crc) {
      throw FormatError(
          "resumable updater: version CRC mismatch after reconstruction");
    }
    result.update.crc_verified = true;
  }
  result.update.ram_high_water = device.ram().high_water();
  return result;
}

}  // namespace ipd
