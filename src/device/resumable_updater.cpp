#include "device/resumable_updater.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "apply/apply_journal.hpp"
#include "core/checksum.hpp"
#include "delta/codec.hpp"

namespace ipd {
namespace {

/// One unit of journaled work (see header comment).
struct Step {
  offset_t from = 0;       // copy source (unused for adds)
  offset_t to = 0;
  length_t length = 0;
  const AddCommand* add = nullptr;  // non-null for add steps
  bool needs_backup = false;        // self-overlapping copy sub-step
};

std::vector<Step> plan_steps(const Script& script,
                             std::size_t window_bytes) {
  std::vector<Step> steps;
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (!copy->self_overlaps()) {
        steps.push_back(Step{copy->from, copy->to, copy->length, nullptr,
                             false});
        continue;
      }
      // Split into window sub-steps in the §4.1 direction; each sub-step
      // journals a backup of its destination window.
      for (const CopySubstep& sub :
           split_self_overlapping_copy(*copy, window_bytes)) {
        steps.push_back(Step{sub.from, sub.to, sub.length, nullptr, true});
      }
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      steps.push_back(Step{0, add.to, add.length(), &add, false});
    }
  }
  return steps;
}

ApplyJournalOptions journal_options(const FlashDevice& device,
                                    const UpdaterOptions& options) {
  ApplyJournalOptions jopts;
  jopts.page_size = device.page_size();
  jopts.undo_capacity = options.window_bytes;
  jopts.header_capacity = 0;  // the staged path re-stages the whole delta
  return jopts;
}

}  // namespace

void clear_journal(FlashDevice& device, const JournalRegion& journal) {
  // Invalidate both slots of the largest journal that could live here:
  // a record's magic sits at its slot's first byte, so zeroing the first
  // page of each half kills any record regardless of the layout in use.
  const std::size_t page = std::max<std::size_t>(device.page_size(), 4);
  const std::size_t half = journal.size / 2;
  const Bytes zeros(std::min(page, journal.size), 0);
  device.write(journal.offset, zeros);
  if (half >= zeros.size()) {
    device.write(journal.offset + half, zeros);
  }
}

ResumableUpdateResult apply_update_resumable(FlashDevice& device,
                                             ByteView delta,
                                             const ChannelModel& channel,
                                             const JournalRegion& journal,
                                             const UpdaterOptions& options) {
  ResumableUpdateResult result;
  result.update.delta_bytes = delta.size();
  result.update.download_seconds = channel.transfer_seconds(delta.size());

  // Stage the delta and parse it.
  RamArena::Allocation staged = device.ram().allocate(delta.size());
  std::copy(delta.begin(), delta.end(), staged.data());
  const DeltaFile file = deserialize_delta(staged.view());
  if (!file.in_place) {
    throw ValidationError(
        "resumable updater: delta is not marked in-place reconstructible");
  }
  const std::uint64_t image_extent =
      std::max(file.reference_length, file.version_length);
  if (image_extent > device.storage_size()) {
    throw DeviceError("resumable updater: image does not fit storage");
  }

  // Journal region checks.
  const ApplyJournalOptions jopts = journal_options(device, options);
  const std::size_t slot = ApplyJournal::slot_bytes(jopts);
  if (journal.size < 2 * slot) {
    throw DeviceError("resumable updater: journal region smaller than two "
                      "slots (" + std::to_string(2 * slot) + " bytes)");
  }
  if (journal.offset < image_extent ||
      journal.offset + journal.size > device.storage_size()) {
    throw DeviceError(
        "resumable updater: journal region overlaps the image area or "
        "exceeds storage");
  }

  const std::uint32_t artifact_crc = crc32c(delta);
  const std::uint64_t artifact_size = delta.size();
  const std::vector<Step> steps = plan_steps(file.script,
                                             options.window_bytes);

  RamArena::Allocation window = device.ram().allocate(options.window_bytes);
  RamArena::Allocation scratch = device.ram().allocate(slot);

  FlashJournalStorage storage(device,
                              JournalRegion{journal.offset, 2 * slot});
  ApplyJournal aj(storage, scratch.view(), jopts);

  // Recovery: resume from the newest valid record for this delta. A
  // record for a different artifact is someone else's history — leave it
  // alone (seq continuation keeps our appends off its slot until ours
  // outnumber it) and start from step 0.
  std::size_t start_step = 0;
  if (const auto rec = aj.newest_for(artifact_crc, artifact_size)) {
    result.resumed = true;
    if (rec->kind == ApplyRecordKind::kDone) {
      start_step = steps.size();  // nothing left but verification
    } else {
      if (rec->command_index >= steps.size()) {
        throw DeviceError("resumable updater: journal step out of range");
      }
      // Undo the possibly-torn step by restoring its backup.
      if (!rec->undo.empty()) {
        device.write(rec->undo_to, rec->undo);
      }
      start_step = static_cast<std::size_t>(rec->command_index);
    }
  }
  result.steps_replayed = start_step;

  const std::uint64_t pages_before = device.pages_touched_write();
  const std::uint64_t bytes_before = device.bytes_written();

  const auto write_record = [&](ApplyRecordKind kind, std::uint64_t step,
                                offset_t backup_to, ByteView backup) {
    ApplyRecord rec;
    rec.kind = kind;
    rec.artifact_crc = artifact_crc;
    rec.artifact_size = artifact_size;
    rec.command_index = step;
    rec.undo_to = backup_to;
    rec.undo.assign(backup.begin(), backup.end());
    aj.append(std::move(rec));
  };

  for (std::size_t k = start_step; k < steps.size(); ++k) {
    const Step& step = steps[k];
    if (step.needs_backup) {
      // Save the destination window so a torn execution can be undone.
      const MutByteView dst =
          window.view().first(static_cast<std::size_t>(step.length));
      device.read(step.to, dst);
      write_record(ApplyRecordKind::kSubstep, k, step.to, dst);
      // Apply: sub-step fits entirely in the window, so one read+write.
      device.read(step.from, dst);
      device.write(step.to, dst);
    } else {
      write_record(ApplyRecordKind::kCheckpoint, k, 0, {});
      if (step.add != nullptr) {
        device.write(step.to, step.add->data);
      } else {
        device_windowed_copy(device, window.view(), step.from, step.to,
                             step.length);
      }
    }
  }

  if (start_step < steps.size() || !result.resumed) {
    write_record(ApplyRecordKind::kDone, steps.size(), 0, {});
  }
  result.journal_records = static_cast<std::size_t>(aj.records_written());

  result.update.new_image_length = file.version_length;
  result.update.storage_bytes_written = device.bytes_written() - bytes_before;
  result.update.storage_pages_written =
      device.pages_touched_write() - pages_before;

  if (options.verify_crc) {
    Crc32c crc;
    length_t done = 0;
    while (done < file.version_length) {
      const std::size_t n = static_cast<std::size_t>(std::min<length_t>(
          window.size(), file.version_length - done));
      const MutByteView chunk = window.view().first(n);
      device.read(done, chunk);
      crc.update(chunk);
      done += n;
    }
    if (crc.value() != file.version_crc) {
      throw FormatError(
          "resumable updater: version CRC mismatch after reconstruction");
    }
    result.update.crc_verified = true;
  }
  result.update.ram_high_water = device.ram().high_water();
  return result;
}

}  // namespace ipd
