// Simulated network-attached device: flash-like paged storage plus a
// strict RAM budget.
//
// The paper's whole premise is a device that can hold ONE file version in
// storage and has almost no scratch memory (§1). This model enforces that
// premise mechanically: storage reads/writes are counted per page (flash
// wear / IO cost), and every byte of working memory must be taken from a
// tracked RAM arena that throws DeviceError on over-budget allocation —
// so the updater tests literally cannot cheat with hidden scratch space.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace ipd {

/// RAM arena with a hard budget and high-water tracking.
class RamArena {
 public:
  explicit RamArena(std::size_t budget) noexcept : budget_(budget) {}

  std::size_t budget() const noexcept { return budget_; }
  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t high_water() const noexcept { return high_water_; }

  /// RAII allocation of `size` bytes of device RAM.
  class Allocation {
   public:
    Allocation(RamArena& arena, std::size_t size)
        : arena_(&arena), buffer_(size) {
      arena.charge(size);
    }
    ~Allocation() {
      if (arena_ != nullptr) arena_->release(buffer_.size());
    }
    Allocation(const Allocation&) = delete;
    Allocation& operator=(const Allocation&) = delete;
    Allocation(Allocation&& other) noexcept
        : arena_(other.arena_), buffer_(std::move(other.buffer_)) {
      other.arena_ = nullptr;
    }
    Allocation& operator=(Allocation&&) = delete;

    MutByteView view() noexcept { return buffer_; }
    ByteView view() const noexcept { return buffer_; }
    std::size_t size() const noexcept { return buffer_.size(); }
    std::uint8_t* data() noexcept { return buffer_.data(); }

   private:
    RamArena* arena_;
    Bytes buffer_;
  };

  Allocation allocate(std::size_t size) { return Allocation(*this, size); }

 private:
  friend class Allocation;

  void charge(std::size_t size) {
    if (in_use_ + size > budget_) {
      throw DeviceError("device RAM budget exceeded: " +
                        std::to_string(in_use_ + size) + " > " +
                        std::to_string(budget_) + " bytes");
    }
    in_use_ += size;
    high_water_ = std::max(high_water_, in_use_);
  }
  void release(std::size_t size) noexcept { in_use_ -= size; }

  std::size_t budget_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

/// Paged storage with IO accounting.
class FlashDevice {
 public:
  FlashDevice(std::size_t storage_bytes, std::size_t page_size,
              std::size_t ram_budget);

  std::size_t storage_size() const noexcept { return storage_.size(); }
  std::size_t page_size() const noexcept { return page_size_; }
  RamArena& ram() noexcept { return ram_; }

  /// Install initial content (e.g. the currently deployed firmware);
  /// does not count toward IO statistics.
  void load_image(ByteView image);

  void read(offset_t offset, MutByteView out);
  void write(offset_t offset, ByteView data);

  /// Direct read-only view of storage, for end-of-test verification only
  /// (a real device's host tooling would read the flash back out).
  ByteView inspect() const noexcept { return storage_; }

  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  std::uint64_t pages_touched_read() const noexcept { return pages_read_; }
  std::uint64_t pages_touched_write() const noexcept { return pages_written_; }

  void reset_stats() noexcept;

  /// Fault injection: after `bytes` more bytes have been written, tear
  /// the in-flight write (its prefix lands, the rest does not) and throw
  /// PowerFailure. Models power loss mid-update; recovery tests arm this,
  /// catch the throw, and resume with a fresh updater.
  void inject_power_failure_after(std::uint64_t bytes) noexcept;
  /// Disarm a pending injection.
  void clear_power_failure() noexcept;

  /// Thrown by the injected fault so tests can distinguish the simulated
  /// power loss from genuine device errors.
  class PowerFailure : public DeviceError {
   public:
    PowerFailure() : DeviceError("simulated power failure") {}
  };

 private:
  void check_range(offset_t offset, std::size_t size) const;
  std::uint64_t pages_in(offset_t offset, std::size_t size) const noexcept;

  Bytes storage_;
  std::size_t page_size_;
  RamArena ram_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t pages_written_ = 0;
  bool fail_armed_ = false;
  std::uint64_t fail_after_ = 0;
};

}  // namespace ipd
