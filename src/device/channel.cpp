#include "device/channel.hpp"

namespace ipd {

ChannelModel channel_9600() { return {"serial-9.6k", 9'600, 0.3, 0.05}; }
ChannelModel channel_28k() { return {"modem-28.8k", 28'800, 0.2, 0.05}; }
ChannelModel channel_56k() { return {"modem-56k", 56'000, 0.2, 0.05}; }
ChannelModel channel_isdn() { return {"isdn-128k", 128'000, 0.1, 0.03}; }
ChannelModel channel_t1() { return {"t1-1.5M", 1'544'000, 0.05, 0.03}; }

}  // namespace ipd
