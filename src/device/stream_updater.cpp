#include "device/stream_updater.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/checksum.hpp"

namespace ipd {
namespace {

JournalRegion stream_region(const FlashDevice& device,
                            const JournalRegion& journal,
                            const ApplyJournalOptions& jopts) {
  const std::size_t slot = ApplyJournal::slot_bytes(jopts);
  if (journal.size < 2 * slot) {
    throw DeviceError("stream updater: journal region smaller than two "
                      "slots (" + std::to_string(2 * slot) + " bytes)");
  }
  if (journal.offset + journal.size > device.storage_size()) {
    throw DeviceError("stream updater: journal region exceeds storage");
  }
  return JournalRegion{journal.offset, 2 * slot};
}

}  // namespace

ApplyJournalOptions StreamingDeviceUpdater::journal_options(
    const FlashDevice& device, const StreamUpdaterOptions& options) {
  if (options.window_bytes == 0) {
    throw DeviceError("stream updater: window_bytes must be >= 1");
  }
  ApplyJournalOptions jopts;
  jopts.page_size = device.page_size();
  jopts.undo_capacity = options.window_bytes;
  jopts.header_capacity = options.header_capacity;
  return jopts;
}

StreamingDeviceUpdater::StreamingDeviceUpdater(
    FlashDevice& device, const JournalRegion& journal,
    const StreamArtifactInfo& info, const StreamUpdaterOptions& options)
    : device_(device),
      info_(info),
      options_(options),
      jopts_(journal_options(device, options)),
      journal_offset_(journal.offset),
      window_(device.ram().allocate(options.window_bytes)),
      scratch_(device.ram().allocate(ApplyJournal::slot_bytes(jopts_))),
      storage_(device, stream_region(device, journal, jopts_)),
      journal_(storage_, scratch_.view(), jopts_) {
  if (info_.artifact_size == 0) {
    throw ValidationError("stream updater: artifact size must be >= 1");
  }
  if (const auto rec =
          journal_.newest_for(info_.artifact_crc, info_.artifact_size)) {
    recover(*rec);
    return;
  }
  // Fresh start. Any record for a different artifact is the device's
  // durable memory of its previous update — leave it; slot alternation
  // retires it once two of our records land, and until our first record
  // is durable it correctly describes the device's state.
  if (info_.full_image) {
    if (info_.artifact_size > device_.storage_size()) {
      throw DeviceError("stream updater: image does not fit storage");
    }
    if (journal_offset_ < info_.artifact_size) {
      throw DeviceError(
          "stream updater: journal region overlaps the image area");
    }
    // Write-ahead: the initial checkpoint lands before any image write.
    append_record(ApplyRecordKind::kCheckpoint, 0, 0, /*artifact_offset=*/0,
                  /*adler_state=*/0, 0, {}, {});
  }
  // Delta mode journals its first checkpoint once the header parses.
}

void StreamingDeviceUpdater::recover(const ApplyRecord& rec) {
  resumed_ = true;
  if (rec.kind == ApplyRecordKind::kDone) {
    finished_ = true;
    stream_pos_ = info_.artifact_size;
    durable_offset_ = info_.artifact_size;
    return;
  }
  if (rec.full_image != info_.full_image) {
    throw DeviceError("stream updater: journal record mode mismatch");
  }
  if (rec.artifact_offset > info_.artifact_size) {
    throw DeviceError("stream updater: journal offset out of range");
  }
  if (info_.full_image) {
    stream_pos_ = rec.artifact_offset;
    durable_offset_ = rec.artifact_offset;
    image_crc_state_ = rec.adler_state;
    last_image_checkpoint_ = rec.artifact_offset;
    return;
  }
  // Re-parse the journaled container header — the device does not need
  // to re-fetch the artifact's first bytes.
  const auto parsed = try_parse_header(rec.header);
  if (!parsed) {
    throw DeviceError("stream updater: journaled header is truncated");
  }
  header_ = parsed->first;
  header_len_ = parsed->second;
  header_blob_.assign(rec.header.begin(), rec.header.end());
  validate_header();
  decoder_.emplace(header_->format, header_->version_length);
  if (rec.artifact_offset < header_len_) {
    throw DeviceError("stream updater: journal offset inside the header");
  }
  // Restoring the undo pre-image is idempotent: it reverts the possibly
  // partially-applied in-flight sub-step, after which every journaled
  // command from command_index on replays byte-exactly.
  if (!rec.undo.empty()) {
    device_.write(rec.undo_to, rec.undo);
  }
  stream_pos_ = rec.artifact_offset;
  durable_offset_ = rec.artifact_offset;
  base_payload_ = rec.artifact_offset - header_len_;
  boundary_adler_ = rec.adler_state;
  adler_pos_ = base_payload_;
  pending_start_ = base_payload_;
  next_command_index_ = rec.command_index;
  commands_ = static_cast<std::size_t>(rec.command_index);
  if (rec.kind == ApplyRecordKind::kSubstep) {
    pending_resume_substep_ = rec.substep;
  } else {
    durable_checkpoint_index_ = rec.command_index;
  }
}

void StreamingDeviceUpdater::validate_header() {
  if (header_->compress_payload) {
    throw ValidationError(
        "stream updater: compressed payloads cannot be applied "
        "incrementally; ship uncompressed or use the staged path");
  }
  if (!header_->in_place) {
    throw ValidationError(
        "stream updater: delta is not marked in-place reconstructible");
  }
  if (header_->format.offsets != WriteOffsets::kExplicit) {
    // Implicit-offset decoding carries a running write cursor that a
    // mid-payload resume cannot reconstruct; in-place deltas pay for
    // explicit offsets anyway (§6).
    throw ValidationError(
        "stream updater: journaled streaming apply requires explicit "
        "write offsets");
  }
  const std::uint64_t extent =
      std::max(header_->reference_length, header_->version_length);
  if (extent > device_.storage_size()) {
    throw DeviceError("stream updater: image does not fit storage");
  }
  if (journal_offset_ < extent) {
    throw DeviceError(
        "stream updater: journal region overlaps the image area");
  }
  if (header_len_ + header_->payload_length != info_.artifact_size) {
    throw FormatError(
        "stream updater: container length does not match artifact size");
  }
}

std::optional<StreamApplyProbe> StreamingDeviceUpdater::probe(
    FlashDevice& device, const JournalRegion& journal,
    const StreamUpdaterOptions& options) {
  const ApplyJournalOptions jopts = journal_options(device, options);
  RamArena::Allocation scratch =
      device.ram().allocate(ApplyJournal::slot_bytes(jopts));
  FlashJournalStorage storage(device, stream_region(device, journal, jopts));
  ApplyJournal aj(storage, scratch.view(), jopts);
  const auto& rec = aj.newest();
  if (!rec) {
    return std::nullopt;
  }
  StreamApplyProbe result;
  result.done = rec->kind == ApplyRecordKind::kDone;
  result.info.artifact_crc = rec->artifact_crc;
  result.info.artifact_size = rec->artifact_size;
  result.info.full_image = rec->full_image;
  result.info.meta_from = rec->meta_from;
  result.info.meta_hop = rec->meta_hop;
  result.info.meta_target = rec->meta_target;
  result.resume_offset =
      result.done ? rec->artifact_size : rec->artifact_offset;
  return result;
}

void StreamingDeviceUpdater::clear(FlashDevice& device,
                                   const JournalRegion& journal,
                                   const StreamUpdaterOptions& options) {
  const ApplyJournalOptions jopts = journal_options(device, options);
  RamArena::Allocation scratch =
      device.ram().allocate(ApplyJournal::slot_bytes(jopts));
  FlashJournalStorage storage(device, stream_region(device, journal, jopts));
  ApplyJournal aj(storage, scratch.view(), jopts);
  aj.clear();
}

std::uint64_t StreamingDeviceUpdater::journal_records() const noexcept {
  return journal_.records_written();
}

void StreamingDeviceUpdater::feed(ByteView chunk) {
  if (poisoned_) {
    throw ValidationError("stream updater: poisoned by earlier error");
  }
  try {
    if (finished_) {
      if (!chunk.empty()) {
        throw FormatError("stream updater: trailing garbage after artifact");
      }
      return;
    }
    if (stream_pos_ + chunk.size() > info_.artifact_size) {
      throw FormatError("stream updater: bytes past declared artifact size");
    }
    if (info_.full_image) {
      feed_full_image(chunk);
    } else {
      feed_delta(chunk);
    }
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void StreamingDeviceUpdater::feed_full_image(ByteView chunk) {
  if (chunk.empty()) {
    return;
  }
  // Image write first, checkpoint after: the checkpoint asserts bytes
  // [0, offset) are durable. A torn image write resumes from the
  // previous checkpoint and rewrites the same bytes — idempotent.
  device_.write(stream_pos_, chunk);
  image_crc_state_ = crc32c(chunk, image_crc_state_);
  stream_pos_ += chunk.size();
  if (stream_pos_ == info_.artifact_size) {
    finish_full_image();
    return;
  }
  if (stream_pos_ - last_image_checkpoint_ >=
      options_.full_image_checkpoint_bytes) {
    append_record(ApplyRecordKind::kCheckpoint, 0, 0, stream_pos_,
                  image_crc_state_, 0, {}, {});
    last_image_checkpoint_ = stream_pos_;
  }
}

void StreamingDeviceUpdater::feed_delta(ByteView chunk) {
  if (!header_) {
    head_pending_.insert(head_pending_.end(), chunk.begin(), chunk.end());
    stream_pos_ += chunk.size();
    const auto parsed = try_parse_header(head_pending_);
    if (!parsed) {
      if (head_pending_.size() > jopts_.header_capacity) {
        throw DeviceError(
            "stream updater: container header exceeds header_capacity");
      }
      return;
    }
    header_ = parsed->first;
    header_len_ = parsed->second;
    if (header_len_ > jopts_.header_capacity) {
      throw DeviceError(
          "stream updater: container header exceeds header_capacity");
    }
    header_blob_.assign(head_pending_.begin(),
                        head_pending_.begin() +
                            static_cast<std::ptrdiff_t>(header_len_));
    validate_header();
    decoder_.emplace(header_->format, header_->version_length);
    // Write-ahead: checkpoint {command 0} with the raw header lands
    // before any flash write, making the journal the device's memory of
    // this hop from the very first byte applied.
    append_record(ApplyRecordKind::kCheckpoint, 0, 0, header_len_,
                  /*adler_state=*/1, 0, {}, header_blob_);
    const Bytes rest(head_pending_.begin() +
                         static_cast<std::ptrdiff_t>(header_len_),
                     head_pending_.end());
    head_pending_.clear();
    head_pending_.shrink_to_fit();
    if (!rest.empty()) {
      ingest_payload(rest);
    } else if (header_->payload_length == 0) {
      finish_delta();
    }
    return;
  }
  stream_pos_ += chunk.size();
  ingest_payload(chunk);
}

void StreamingDeviceUpdater::ingest_payload(ByteView chunk) {
  pending_payload_.insert(pending_payload_.end(), chunk.begin(), chunk.end());
  decoder_->feed(chunk);
  drain_commands();
}

void StreamingDeviceUpdater::drain_commands() {
  for (;;) {
    const std::uint64_t pre = base_payload_ + decoder_->consumed();
    auto cmd = decoder_->next();
    if (!cmd) {
      break;
    }
    process_command(*cmd, pre);
  }
  const std::uint64_t payload_seen = stream_pos_ - header_len_;
  const std::uint64_t consumed = base_payload_ + decoder_->consumed();
  if (consumed == header_->payload_length &&
      payload_seen == header_->payload_length) {
    if (decoder_->buffered() != 0) {
      throw FormatError(
          "stream updater: garbage between last command and payload end");
    }
    finish_delta();
    return;
  }
  if (payload_seen == header_->payload_length && decoder_->buffered() != 0) {
    throw FormatError("stream updater: payload ends inside a command");
  }
  // Drop payload bytes already folded into the boundary checksum.
  const std::size_t folded =
      static_cast<std::size_t>(adler_pos_ - pending_start_);
  if (folded > 0) {
    pending_payload_.erase(pending_payload_.begin(),
                           pending_payload_.begin() +
                               static_cast<std::ptrdiff_t>(folded));
    pending_start_ = adler_pos_;
  }
}

void StreamingDeviceUpdater::process_command(const Command& cmd,
                                             std::uint64_t payload_pre) {
  const std::uint64_t idx = next_command_index_++;
  ++commands_;
  const length_t len = command_length(cmd);
  if (len == 0) {
    if (pending_resume_substep_) {
      throw FormatError(
          "stream updater: journal sub-step does not match artifact");
    }
    return;
  }
  const Interval w = command_write_interval(cmd);
  if (w.last >= header_->version_length) {
    throw ValidationError("stream updater: command writes past version");
  }
  if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
    if (copy->from + copy->length > header_->reference_length) {
      throw ValidationError("stream updater: copy reads past reference");
    }
    if (options_.check_conflicts) {
      const Interval read = copy->read_interval();
      auto it = written_.upper_bound(read.last);
      if (it != written_.begin() && std::prev(it)->second >= read.first) {
        throw ConflictError(
            "stream updater: write-before-read conflict at command " +
            std::to_string(idx));
      }
    }
    if (copy->self_overlaps()) {
      run_substeps(*copy, idx, payload_pre);
    } else {
      if (pending_resume_substep_) {
        throw FormatError(
            "stream updater: journal sub-step does not match artifact");
      }
      if (!try_join(w)) {
        force_seal(idx, payload_pre);
      }
      device_windowed_copy(device_, window_.view(), copy->from, copy->to,
                           copy->length);
      batch_reads_.push_back(copy->read_interval());
      ++batch_count_;
    }
  } else {
    if (pending_resume_substep_) {
      throw FormatError(
          "stream updater: journal sub-step does not match artifact");
    }
    const AddCommand& add = std::get<AddCommand>(cmd);
    if (!try_join(w)) {
      force_seal(idx, payload_pre);
    }
    device_.write(add.to, add.data);
    ++batch_count_;
  }
  if (options_.check_conflicts) {
    written_[w.first] = w.last;
  }
}

void StreamingDeviceUpdater::run_substeps(const CopyCommand& copy,
                                          std::uint64_t command_index,
                                          std::uint64_t payload_pre) {
  std::uint64_t start_sub = 0;
  if (pending_resume_substep_) {
    // The journal's kSubstep record for this command is already durable
    // and its undo restored; writing a checkpoint here would license
    // replay from sub-step 0 over a state where later sub-steps already
    // ran. Resume directly at the recorded sub-step.
    start_sub = *pending_resume_substep_;
    pending_resume_substep_.reset();
  } else {
    // A self-overlapping copy is never idempotent — it gets a sealed
    // batch of its own.
    force_seal(command_index, payload_pre);
  }
  const std::vector<CopySubstep> subs =
      split_self_overlapping_copy(copy, options_.window_bytes);
  if (start_sub >= subs.size()) {
    throw DeviceError("stream updater: journal sub-step out of range");
  }
  for (std::uint64_t s = start_sub; s < subs.size(); ++s) {
    const CopySubstep& sub = subs[s];
    const MutByteView dst =
        window_.view().first(static_cast<std::size_t>(sub.length));
    device_.read(sub.to, dst);  // destination pre-image = undo
    append_record(ApplyRecordKind::kSubstep, command_index, s,
                  header_len_ + payload_pre, adler_at(payload_pre), sub.to,
                  dst, header_blob_);
    device_.read(sub.from, dst);
    device_.write(sub.to, dst);
  }
  // Close the command: later commands may overwrite its sources, so
  // replay must never re-enter its sub-steps.
  const std::uint64_t post = base_payload_ + decoder_->consumed();
  force_seal(command_index + 1, post);
}

bool StreamingDeviceUpdater::try_join(const Interval& write) const {
  if (batch_count_ >=
      std::max<std::size_t>(options_.checkpoint_commands, 1)) {
    return false;
  }
  // Replay-idempotence: the joining command's write must not touch any
  // batch member's read set, or re-running the batch from its checkpoint
  // would read post-write bytes. (Equation 2 covers only the forward
  // direction — earlier writes vs later reads.)
  for (const Interval& read : batch_reads_) {
    if (write.intersects(read)) {
      return false;
    }
  }
  return true;
}

void StreamingDeviceUpdater::force_seal(std::uint64_t command_index,
                                        std::uint64_t payload_offset) {
  batch_reads_.clear();
  batch_count_ = 0;
  if (durable_checkpoint_index_ == command_index) {
    return;  // this boundary is already the newest durable record
  }
  append_record(ApplyRecordKind::kCheckpoint, command_index, 0,
                header_len_ + payload_offset, adler_at(payload_offset), 0,
                {}, header_blob_);
}

std::uint32_t StreamingDeviceUpdater::adler_at(std::uint64_t payload_offset) {
  if (payload_offset > adler_pos_) {
    const std::size_t a = static_cast<std::size_t>(adler_pos_ - pending_start_);
    const std::size_t b =
        static_cast<std::size_t>(payload_offset - pending_start_);
    if (b > pending_payload_.size()) {
      throw DeviceError("stream updater: checksum fold out of range");
    }
    boundary_adler_ =
        adler32(ByteView(pending_payload_).subspan(a, b - a), boundary_adler_);
    adler_pos_ = payload_offset;
  }
  return boundary_adler_;
}

void StreamingDeviceUpdater::append_record(
    ApplyRecordKind kind, std::uint64_t command_index, std::uint64_t substep,
    std::uint64_t artifact_offset, std::uint32_t adler_state,
    offset_t undo_to, ByteView undo, ByteView header_blob) {
  ApplyRecord rec;
  rec.kind = kind;
  rec.full_image = info_.full_image;
  rec.artifact_crc = info_.artifact_crc;
  rec.artifact_size = info_.artifact_size;
  rec.meta_from = info_.meta_from;
  rec.meta_hop = info_.meta_hop;
  rec.meta_target = info_.meta_target;
  rec.command_index = command_index;
  rec.substep = substep;
  rec.artifact_offset = artifact_offset;
  rec.adler_state = adler_state;
  rec.undo_to = undo_to;
  rec.undo.assign(undo.begin(), undo.end());
  rec.header.assign(header_blob.begin(), header_blob.end());
  journal_.append(std::move(rec));
  durable_offset_ =
      kind == ApplyRecordKind::kDone ? info_.artifact_size : artifact_offset;
  if (kind == ApplyRecordKind::kCheckpoint && !info_.full_image) {
    durable_checkpoint_index_ = command_index;
  } else {
    durable_checkpoint_index_.reset();
  }
}

void StreamingDeviceUpdater::finish_delta() {
  const std::uint32_t final_adler = adler_at(header_->payload_length);
  if (header_->payload_length > 0 && final_adler != header_->payload_adler) {
    throw FormatError("stream updater: payload checksum mismatch");
  }
  if (options_.verify_crc) {
    verify_image_crc(header_->version_length, header_->version_crc,
                     "version");
  }
  append_record(ApplyRecordKind::kDone, next_command_index_, 0,
                info_.artifact_size, final_adler, 0, {}, {});
  finished_ = true;
}

void StreamingDeviceUpdater::finish_full_image() {
  if (image_crc_state_ != info_.artifact_crc) {
    throw FormatError("stream updater: image checksum mismatch");
  }
  if (options_.verify_crc) {
    verify_image_crc(info_.artifact_size, info_.artifact_crc, "image");
  }
  append_record(ApplyRecordKind::kDone, 0, 0, info_.artifact_size,
                image_crc_state_, 0, {}, {});
  finished_ = true;
}

void StreamingDeviceUpdater::verify_image_crc(std::uint64_t length,
                                              std::uint32_t expected,
                                              const char* what) {
  Crc32c crc;
  std::uint64_t done = 0;
  while (done < length) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(window_.size(), length - done));
    const MutByteView chunk = window_.view().first(n);
    device_.read(done, chunk);
    crc.update(chunk);
    done += n;
  }
  if (crc.value() != expected) {
    throw FormatError(std::string("stream updater: ") + what +
                      " CRC mismatch after reconstruction");
  }
}

}  // namespace ipd
