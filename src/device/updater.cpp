#include "device/updater.hpp"

#include <algorithm>

#include "core/checksum.hpp"
#include "delta/codec.hpp"

namespace ipd {

void device_windowed_copy(FlashDevice& device, MutByteView window,
                          offset_t from, offset_t to, length_t length) {
  const std::size_t win = window.size();
  if (from >= to) {
    // Left-to-right.
    length_t done = 0;
    while (done < length) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<length_t>(win, length - done));
      const MutByteView chunk = window.first(n);
      device.read(from + done, chunk);
      device.write(to + done, chunk);
      done += n;
    }
  } else {
    // Right-to-left.
    length_t remaining = length;
    while (remaining > 0) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<length_t>(win, remaining));
      remaining -= n;
      const MutByteView chunk = window.first(n);
      device.read(from + remaining, chunk);
      device.write(to + remaining, chunk);
    }
  }
}

std::vector<CopySubstep> split_self_overlapping_copy(
    const CopyCommand& copy, std::size_t window_bytes) {
  std::vector<CopySubstep> steps;
  const length_t l = copy.length;
  const length_t w = window_bytes;
  if (copy.from >= copy.to) {
    for (length_t off = 0; off < l; off += w) {
      const length_t n = std::min<length_t>(w, l - off);
      steps.push_back(CopySubstep{copy.from + off, copy.to + off, n});
    }
  } else {
    for (length_t end = l; end > 0;) {
      const length_t n = std::min<length_t>(w, end);
      const length_t off = end - n;
      steps.push_back(CopySubstep{copy.from + off, copy.to + off, n});
      end = off;
    }
  }
  return steps;
}

UpdateResult apply_update(FlashDevice& device, ByteView delta,
                          const ChannelModel& channel,
                          const UpdaterOptions& options) {
  UpdateResult result;
  result.delta_bytes = delta.size();
  result.download_seconds = channel.transfer_seconds(delta.size());

  // Stage the downloaded delta in device RAM (it must fit the budget).
  RamArena::Allocation staged = device.ram().allocate(delta.size());
  std::copy(delta.begin(), delta.end(), staged.data());

  const DeltaFile file = deserialize_delta(staged.view());
  if (!file.in_place) {
    throw ValidationError(
        "updater: delta is not marked in-place reconstructible");
  }
  if (file.reference_length > device.storage_size() ||
      file.version_length > device.storage_size()) {
    throw DeviceError("updater: image does not fit device storage");
  }

  RamArena::Allocation window = device.ram().allocate(options.window_bytes);

  const std::uint64_t pages_before = device.pages_touched_write();
  const std::uint64_t bytes_before = device.bytes_written();

  for (const Command& cmd : file.script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      device_windowed_copy(device, window.view(), copy->from, copy->to,
                           copy->length);
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      device.write(add.to, add.data);
    }
  }

  result.new_image_length = file.version_length;
  result.storage_bytes_written = device.bytes_written() - bytes_before;
  result.storage_pages_written = device.pages_touched_write() - pages_before;

  if (options.verify_crc) {
    Crc32c crc;
    length_t done = 0;
    while (done < file.version_length) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<length_t>(window.size(), file.version_length - done));
      const MutByteView chunk = window.view().first(n);
      device.read(done, chunk);
      crc.update(chunk);
      done += n;
    }
    if (crc.value() != file.version_crc) {
      throw FormatError("updater: version CRC mismatch after in-place "
                        "reconstruction");
    }
    result.crc_verified = true;
  }

  result.ram_high_water = device.ram().high_water();
  return result;
}

}  // namespace ipd
