// JournalStorage adapter over a reserved FlashDevice region — the spare
// flash sector the apply journal (apply/apply_journal.hpp) lives in.
// Bounds are enforced here, so the journal can never scribble on the
// image area; power-failure injection applies to journal writes exactly
// like image writes (a checkpoint record can be torn mid-write, which is
// the failure mode the two-slot alternation exists for).
#pragma once

#include "apply/apply_journal.hpp"
#include "device/flash_device.hpp"

namespace ipd {

/// Reserved storage region for the journal. Must not overlap the image
/// area [0, max(reference, version)).
struct JournalRegion {
  offset_t offset = 0;
  std::size_t size = 0;
};

class FlashJournalStorage final : public JournalStorage {
 public:
  FlashJournalStorage(FlashDevice& device, const JournalRegion& region)
      : device_(device), region_(region) {
    if (region.offset + region.size > device.storage_size()) {
      throw DeviceError("flash journal: region exceeds device storage");
    }
  }

  std::size_t size() const override { return region_.size; }

  void read(offset_t offset, MutByteView out) override {
    check(offset, out.size());
    device_.read(region_.offset + offset, out);
  }

  void write(offset_t offset, ByteView data) override {
    check(offset, data.size());
    device_.write(region_.offset + offset, data);
  }

 private:
  void check(offset_t offset, std::size_t n) const {
    if (offset + n > region_.size) {
      throw DeviceError("flash journal: access outside the journal region");
    }
  }

  FlashDevice& device_;
  JournalRegion region_;
};

}  // namespace ipd
