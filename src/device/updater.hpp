// The on-device updater: receives an in-place delta over a channel and
// rebuilds the new software version directly in device storage.
//
// This is the paper's §1 scenario executed literally. RAM use is bounded
// and enforced by the device's RamArena: the delta itself (devices stage
// the downloaded delta in RAM — it is small) plus one fixed copy window.
// Copies whose read and write ranges overlap are performed window-by-
// window, left-to-right when f >= t and right-to-left otherwise — the
// "read/write buffer of any size" generalisation of §4.1.
#pragma once

#include <vector>

#include "delta/command.hpp"
#include "device/channel.hpp"
#include "device/flash_device.hpp"

namespace ipd {

struct UpdaterOptions {
  /// Size of the bounded copy window (device working buffer).
  std::size_t window_bytes = 4096;
  /// Verify the reconstruction against the delta's version CRC by
  /// streaming storage back through the window.
  bool verify_crc = true;
};

struct UpdateResult {
  length_t new_image_length = 0;
  double download_seconds = 0;       ///< channel time for the delta
  std::size_t delta_bytes = 0;
  std::size_t ram_high_water = 0;    ///< peak device RAM during update
  std::uint64_t storage_bytes_written = 0;
  std::uint64_t storage_pages_written = 0;
  bool crc_verified = false;
};

/// Deliver `delta` (a serialized in-place delta file) over `channel` and
/// apply it to `device` storage in place. The device's current image must
/// be the delta's reference version. Throws:
///  * DeviceError  — RAM budget exceeded or storage bounds violated;
///  * Validation/FormatError — malformed delta, wrong flags, CRC mismatch.
UpdateResult apply_update(FlashDevice& device, ByteView delta,
                          const ChannelModel& channel,
                          const UpdaterOptions& options = {});

/// Storage-to-storage copy through a bounded RAM window, ordered so
/// overlapping source/destination never reads an overwritten byte
/// (§4.1's buffer-granular copy). Shared by the plain and resumable
/// updaters; exposed for tests.
void device_windowed_copy(FlashDevice& device, MutByteView window,
                          offset_t from, offset_t to, length_t length);

/// One window-sized piece of a self-overlapping copy. Sub-steps are NOT
/// individually idempotent — interrupting one can corrupt its own source
/// — so journaled updaters save the destination window (the pre-image)
/// before executing each sub-step; restoring it makes the sub-step
/// re-runnable.
struct CopySubstep {
  offset_t from = 0;
  offset_t to = 0;
  length_t length = 0;
};

/// Split a self-overlapping copy into window-sized sub-steps in the §4.1
/// direction (left-to-right when f >= t, right-to-left otherwise), so
/// executing them in order never reads a byte an earlier sub-step wrote.
/// Shared by the resumable (staged) and streaming journaled updaters.
std::vector<CopySubstep> split_self_overlapping_copy(
    const CopyCommand& copy, std::size_t window_bytes);

}  // namespace ipd
