// Low-bandwidth channel model for the paper's motivating scenario (§1):
// software update of network-attached devices over slow links. Purely
// analytic — transfer time = latency + bytes / bandwidth — which is all
// the end-to-end update-time experiment (E8) needs.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace ipd {

struct ChannelModel {
  std::string name = "modem-28.8k";
  double bandwidth_bits_per_s = 28'800;
  double latency_s = 0.2;
  /// Fractional protocol overhead (headers, retransmits); 0.05 = 5 %.
  double overhead = 0.05;

  /// Seconds to deliver `bytes` over this channel.
  double transfer_seconds(std::uint64_t bytes) const noexcept {
    const double effective_bits =
        static_cast<double>(bytes) * 8.0 * (1.0 + overhead);
    return latency_s + effective_bits / bandwidth_bits_per_s;
  }
};

/// The sweep of 1998-era device links used by bench_update_time.
ChannelModel channel_9600();    ///< cellular / serial 9.6 kbit/s
ChannelModel channel_28k();     ///< v.34 modem
ChannelModel channel_56k();     ///< v.90 modem
ChannelModel channel_isdn();    ///< 128 kbit/s
ChannelModel channel_t1();      ///< 1.544 Mbit/s

}  // namespace ipd
