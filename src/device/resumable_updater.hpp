// Power-failure-tolerant in-place update.
//
// In-place reconstruction destroys the only copy of the old version as it
// runs (§1); if power fails mid-update the device holds neither version.
// Real OTA updaters solve this with a small journal, and so do we:
//
//  * The journal lives in a reserved storage region (a spare flash
//    sector), holding two alternating fixed-size slots.
//  * Before step k runs, a record {seq, command, sub-step, backup} is
//    written to slot seq%2. Its presence (validated by a CRC) means
//    "every step before k completed; step k may be partially applied".
//  * Idempotent steps (adds, non-self-overlapping copies) carry no
//    backup — re-running them is safe because Equation 2 guarantees
//    nothing they read has been modified.
//  * A self-overlapping copy is NOT idempotent: interrupting it corrupts
//    its own source. It is split into window-sized sub-steps (applied in
//    the §4.1 direction), and each sub-step's record carries a backup of
//    the destination window — restoring it makes the sub-step re-runnable.
//  * Torn journal writes are covered by the alternation: if record k is
//    torn, record k-1 in the other slot is intact, and step k never
//    started (records are written before their step), so resuming at
//    step k-1 is sound.
//
// Recovery is automatic: run() inspects the journal, and if a valid
// record matches this delta (by checksum), restores the backup and
// resumes from the recorded step.
//
// The record format, slot alternation, and recovery scan live in
// apply/apply_journal.hpp and are shared with the streaming updater
// (device/stream_updater.hpp); see docs/DEVICE.md for the on-flash
// layout.
#pragma once

#include "device/channel.hpp"
#include "device/flash_device.hpp"
#include "device/flash_journal.hpp"
#include "device/updater.hpp"

namespace ipd {

struct ResumableUpdateResult {
  UpdateResult update;
  bool resumed = false;           ///< recovery path was taken
  std::size_t steps_replayed = 0; ///< first step index executed this run
  std::size_t journal_records = 0;
};

/// Apply `delta` (a serialized in-place delta) to `device` with journaled
/// crash tolerance. Call again with the same arguments after a power
/// failure to resume. Throws FlashDevice::PowerFailure through (that is
/// the simulated crash), DeviceError for resource violations, and
/// Format/ValidationError for bad deltas.
ResumableUpdateResult apply_update_resumable(
    FlashDevice& device, ByteView delta, const ChannelModel& channel,
    const JournalRegion& journal, const UpdaterOptions& options = {});

/// Erase any journal state in `journal` (e.g. after provisioning).
void clear_journal(FlashDevice& device, const JournalRegion& journal);

}  // namespace ipd
