# Empty compiler generated dependencies file for test_rolling_hash.
# This may be replaced when dependencies are built.
