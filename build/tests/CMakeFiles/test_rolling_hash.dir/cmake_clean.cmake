file(REMOVE_RECURSE
  "CMakeFiles/test_rolling_hash.dir/test_rolling_hash.cpp.o"
  "CMakeFiles/test_rolling_hash.dir/test_rolling_hash.cpp.o.d"
  "test_rolling_hash"
  "test_rolling_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rolling_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
