# Empty dependencies file for test_pipeline_matrix.
# This may be replaced when dependencies are built.
