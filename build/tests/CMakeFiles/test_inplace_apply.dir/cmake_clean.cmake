file(REMOVE_RECURSE
  "CMakeFiles/test_inplace_apply.dir/test_inplace_apply.cpp.o"
  "CMakeFiles/test_inplace_apply.dir/test_inplace_apply.cpp.o.d"
  "test_inplace_apply"
  "test_inplace_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inplace_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
