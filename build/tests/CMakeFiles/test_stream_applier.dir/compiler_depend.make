# Empty compiler generated dependencies file for test_stream_applier.
# This may be replaced when dependencies are built.
