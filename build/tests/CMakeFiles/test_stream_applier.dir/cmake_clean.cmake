file(REMOVE_RECURSE
  "CMakeFiles/test_stream_applier.dir/test_stream_applier.cpp.o"
  "CMakeFiles/test_stream_applier.dir/test_stream_applier.cpp.o.d"
  "test_stream_applier"
  "test_stream_applier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_applier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
