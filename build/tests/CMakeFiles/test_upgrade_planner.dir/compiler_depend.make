# Empty compiler generated dependencies file for test_upgrade_planner.
# This may be replaced when dependencies are built.
