file(REMOVE_RECURSE
  "CMakeFiles/test_upgrade_planner.dir/test_upgrade_planner.cpp.o"
  "CMakeFiles/test_upgrade_planner.dir/test_upgrade_planner.cpp.o.d"
  "test_upgrade_planner"
  "test_upgrade_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upgrade_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
