file(REMOVE_RECURSE
  "CMakeFiles/test_differ_greedy.dir/test_differ_greedy.cpp.o"
  "CMakeFiles/test_differ_greedy.dir/test_differ_greedy.cpp.o.d"
  "test_differ_greedy"
  "test_differ_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differ_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
