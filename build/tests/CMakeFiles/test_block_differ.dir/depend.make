# Empty dependencies file for test_block_differ.
# This may be replaced when dependencies are built.
