file(REMOVE_RECURSE
  "CMakeFiles/test_block_differ.dir/test_block_differ.cpp.o"
  "CMakeFiles/test_block_differ.dir/test_block_differ.cpp.o.d"
  "test_block_differ"
  "test_block_differ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_differ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
