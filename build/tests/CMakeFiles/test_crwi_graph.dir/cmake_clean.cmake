file(REMOVE_RECURSE
  "CMakeFiles/test_crwi_graph.dir/test_crwi_graph.cpp.o"
  "CMakeFiles/test_crwi_graph.dir/test_crwi_graph.cpp.o.d"
  "test_crwi_graph"
  "test_crwi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crwi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
