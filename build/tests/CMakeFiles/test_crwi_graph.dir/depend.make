# Empty dependencies file for test_crwi_graph.
# This may be replaced when dependencies are built.
