file(REMOVE_RECURSE
  "CMakeFiles/test_differ_onepass.dir/test_differ_onepass.cpp.o"
  "CMakeFiles/test_differ_onepass.dir/test_differ_onepass.cpp.o.d"
  "test_differ_onepass"
  "test_differ_onepass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differ_onepass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
