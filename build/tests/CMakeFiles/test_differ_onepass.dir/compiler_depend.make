# Empty compiler generated dependencies file for test_differ_onepass.
# This may be replaced when dependencies are built.
