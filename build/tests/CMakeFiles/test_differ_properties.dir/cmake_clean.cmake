file(REMOVE_RECURSE
  "CMakeFiles/test_differ_properties.dir/test_differ_properties.cpp.o"
  "CMakeFiles/test_differ_properties.dir/test_differ_properties.cpp.o.d"
  "test_differ_properties"
  "test_differ_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differ_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
