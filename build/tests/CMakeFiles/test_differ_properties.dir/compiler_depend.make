# Empty compiler generated dependencies file for test_differ_properties.
# This may be replaced when dependencies are built.
