file(REMOVE_RECURSE
  "CMakeFiles/test_inplace_differ.dir/test_inplace_differ.cpp.o"
  "CMakeFiles/test_inplace_differ.dir/test_inplace_differ.cpp.o.d"
  "test_inplace_differ"
  "test_inplace_differ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inplace_differ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
