# Empty dependencies file for test_inplace_differ.
# This may be replaced when dependencies are built.
