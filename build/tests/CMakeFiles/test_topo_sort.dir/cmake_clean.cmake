file(REMOVE_RECURSE
  "CMakeFiles/test_topo_sort.dir/test_topo_sort.cpp.o"
  "CMakeFiles/test_topo_sort.dir/test_topo_sort.cpp.o.d"
  "test_topo_sort"
  "test_topo_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
