# Empty dependencies file for test_topo_sort.
# This may be replaced when dependencies are built.
