# Empty dependencies file for test_suffix_differ.
# This may be replaced when dependencies are built.
