file(REMOVE_RECURSE
  "CMakeFiles/test_suffix_differ.dir/test_suffix_differ.cpp.o"
  "CMakeFiles/test_suffix_differ.dir/test_suffix_differ.cpp.o.d"
  "test_suffix_differ"
  "test_suffix_differ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suffix_differ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
