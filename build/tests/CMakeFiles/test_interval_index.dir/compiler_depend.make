# Empty compiler generated dependencies file for test_interval_index.
# This may be replaced when dependencies are built.
