file(REMOVE_RECURSE
  "CMakeFiles/test_interval_index.dir/test_interval_index.cpp.o"
  "CMakeFiles/test_interval_index.dir/test_interval_index.cpp.o.d"
  "test_interval_index"
  "test_interval_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
