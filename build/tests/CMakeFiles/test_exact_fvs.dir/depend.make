# Empty dependencies file for test_exact_fvs.
# This may be replaced when dependencies are built.
