file(REMOVE_RECURSE
  "CMakeFiles/test_exact_fvs.dir/test_exact_fvs.cpp.o"
  "CMakeFiles/test_exact_fvs.dir/test_exact_fvs.cpp.o.d"
  "test_exact_fvs"
  "test_exact_fvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_fvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
