file(REMOVE_RECURSE
  "CMakeFiles/test_core_misc.dir/test_core_misc.cpp.o"
  "CMakeFiles/test_core_misc.dir/test_core_misc.cpp.o.d"
  "test_core_misc"
  "test_core_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
