file(REMOVE_RECURSE
  "CMakeFiles/test_resumable_updater.dir/test_resumable_updater.cpp.o"
  "CMakeFiles/test_resumable_updater.dir/test_resumable_updater.cpp.o.d"
  "test_resumable_updater"
  "test_resumable_updater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resumable_updater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
