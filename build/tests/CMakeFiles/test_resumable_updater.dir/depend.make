# Empty dependencies file for test_resumable_updater.
# This may be replaced when dependencies are built.
