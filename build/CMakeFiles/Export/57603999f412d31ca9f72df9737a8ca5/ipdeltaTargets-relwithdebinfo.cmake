#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ipdelta::ipdelta_core" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_core.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_core )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_core "${_IMPORT_PREFIX}/lib/libipdelta_core.a" )

# Import target "ipdelta::ipdelta_delta" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_delta APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_delta PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_delta.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_delta )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_delta "${_IMPORT_PREFIX}/lib/libipdelta_delta.a" )

# Import target "ipdelta::ipdelta_inplace" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_inplace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_inplace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_inplace.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_inplace )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_inplace "${_IMPORT_PREFIX}/lib/libipdelta_inplace.a" )

# Import target "ipdelta::ipdelta_apply" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_apply APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_apply PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_apply.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_apply )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_apply "${_IMPORT_PREFIX}/lib/libipdelta_apply.a" )

# Import target "ipdelta::ipdelta_device" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_device APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_device PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_device.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_device )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_device "${_IMPORT_PREFIX}/lib/libipdelta_device.a" )

# Import target "ipdelta::ipdelta_corpus" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_corpus APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_corpus PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_corpus.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_corpus )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_corpus "${_IMPORT_PREFIX}/lib/libipdelta_corpus.a" )

# Import target "ipdelta::ipdelta_adversary" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_adversary APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_adversary PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_adversary.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_adversary )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_adversary "${_IMPORT_PREFIX}/lib/libipdelta_adversary.a" )

# Import target "ipdelta::ipdelta_archive" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_archive APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_archive PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_archive.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_archive )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_archive "${_IMPORT_PREFIX}/lib/libipdelta_archive.a" )

# Import target "ipdelta::ipdelta_api" for configuration "RelWithDebInfo"
set_property(TARGET ipdelta::ipdelta_api APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ipdelta::ipdelta_api PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libipdelta_api.a"
  )

list(APPEND _cmake_import_check_targets ipdelta::ipdelta_api )
list(APPEND _cmake_import_check_files_for_ipdelta::ipdelta_api "${_IMPORT_PREFIX}/lib/libipdelta_api.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
