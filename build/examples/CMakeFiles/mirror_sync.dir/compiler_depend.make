# Empty compiler generated dependencies file for mirror_sync.
# This may be replaced when dependencies are built.
