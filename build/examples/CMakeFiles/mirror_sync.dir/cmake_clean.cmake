file(REMOVE_RECURSE
  "CMakeFiles/mirror_sync.dir/mirror_sync.cpp.o"
  "CMakeFiles/mirror_sync.dir/mirror_sync.cpp.o.d"
  "mirror_sync"
  "mirror_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirror_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
