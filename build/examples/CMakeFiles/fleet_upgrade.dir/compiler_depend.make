# Empty compiler generated dependencies file for fleet_upgrade.
# This may be replaced when dependencies are built.
