file(REMOVE_RECURSE
  "CMakeFiles/fleet_upgrade.dir/fleet_upgrade.cpp.o"
  "CMakeFiles/fleet_upgrade.dir/fleet_upgrade.cpp.o.d"
  "fleet_upgrade"
  "fleet_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
