# Empty compiler generated dependencies file for ipdelta_cli.
# This may be replaced when dependencies are built.
