file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_cli.dir/ipdelta_cli.cpp.o"
  "CMakeFiles/ipdelta_cli.dir/ipdelta_cli.cpp.o.d"
  "ipdelta"
  "ipdelta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
