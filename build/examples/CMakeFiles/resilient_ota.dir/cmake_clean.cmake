file(REMOVE_RECURSE
  "CMakeFiles/resilient_ota.dir/resilient_ota.cpp.o"
  "CMakeFiles/resilient_ota.dir/resilient_ota.cpp.o.d"
  "resilient_ota"
  "resilient_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
