# Empty compiler generated dependencies file for resilient_ota.
# This may be replaced when dependencies are built.
