# Empty compiler generated dependencies file for ipdelta_delta.
# This may be replaced when dependencies are built.
