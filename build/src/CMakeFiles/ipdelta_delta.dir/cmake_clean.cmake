file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_delta.dir/delta/block_differ.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/block_differ.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/codec.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/codec.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/command.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/command.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/compose.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/compose.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/differ.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/differ.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/greedy_differ.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/greedy_differ.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/onepass_differ.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/onepass_differ.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/optimize.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/optimize.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/script.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/script.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/stats.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/stats.cpp.o.d"
  "CMakeFiles/ipdelta_delta.dir/delta/suffix_differ.cpp.o"
  "CMakeFiles/ipdelta_delta.dir/delta/suffix_differ.cpp.o.d"
  "libipdelta_delta.a"
  "libipdelta_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
