file(REMOVE_RECURSE
  "libipdelta_delta.a"
)
