
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delta/block_differ.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/block_differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/block_differ.cpp.o.d"
  "/root/repo/src/delta/codec.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/codec.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/codec.cpp.o.d"
  "/root/repo/src/delta/command.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/command.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/command.cpp.o.d"
  "/root/repo/src/delta/compose.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/compose.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/compose.cpp.o.d"
  "/root/repo/src/delta/differ.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/differ.cpp.o.d"
  "/root/repo/src/delta/greedy_differ.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/greedy_differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/greedy_differ.cpp.o.d"
  "/root/repo/src/delta/onepass_differ.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/onepass_differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/onepass_differ.cpp.o.d"
  "/root/repo/src/delta/optimize.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/optimize.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/optimize.cpp.o.d"
  "/root/repo/src/delta/script.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/script.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/script.cpp.o.d"
  "/root/repo/src/delta/stats.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/stats.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/stats.cpp.o.d"
  "/root/repo/src/delta/suffix_differ.cpp" "src/CMakeFiles/ipdelta_delta.dir/delta/suffix_differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_delta.dir/delta/suffix_differ.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipdelta_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
