# Empty dependencies file for ipdelta_api.
# This may be replaced when dependencies are built.
