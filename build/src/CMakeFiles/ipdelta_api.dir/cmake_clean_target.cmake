file(REMOVE_RECURSE
  "libipdelta_api.a"
)
