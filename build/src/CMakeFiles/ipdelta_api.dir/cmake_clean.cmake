file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_api.dir/ipdelta.cpp.o"
  "CMakeFiles/ipdelta_api.dir/ipdelta.cpp.o.d"
  "libipdelta_api.a"
  "libipdelta_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
