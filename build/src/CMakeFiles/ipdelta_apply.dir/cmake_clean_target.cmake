file(REMOVE_RECURSE
  "libipdelta_apply.a"
)
