file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_apply.dir/apply/apply.cpp.o"
  "CMakeFiles/ipdelta_apply.dir/apply/apply.cpp.o.d"
  "CMakeFiles/ipdelta_apply.dir/apply/inplace_apply.cpp.o"
  "CMakeFiles/ipdelta_apply.dir/apply/inplace_apply.cpp.o.d"
  "CMakeFiles/ipdelta_apply.dir/apply/oracle.cpp.o"
  "CMakeFiles/ipdelta_apply.dir/apply/oracle.cpp.o.d"
  "CMakeFiles/ipdelta_apply.dir/apply/stream_applier.cpp.o"
  "CMakeFiles/ipdelta_apply.dir/apply/stream_applier.cpp.o.d"
  "libipdelta_apply.a"
  "libipdelta_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
