
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apply/apply.cpp" "src/CMakeFiles/ipdelta_apply.dir/apply/apply.cpp.o" "gcc" "src/CMakeFiles/ipdelta_apply.dir/apply/apply.cpp.o.d"
  "/root/repo/src/apply/inplace_apply.cpp" "src/CMakeFiles/ipdelta_apply.dir/apply/inplace_apply.cpp.o" "gcc" "src/CMakeFiles/ipdelta_apply.dir/apply/inplace_apply.cpp.o.d"
  "/root/repo/src/apply/oracle.cpp" "src/CMakeFiles/ipdelta_apply.dir/apply/oracle.cpp.o" "gcc" "src/CMakeFiles/ipdelta_apply.dir/apply/oracle.cpp.o.d"
  "/root/repo/src/apply/stream_applier.cpp" "src/CMakeFiles/ipdelta_apply.dir/apply/stream_applier.cpp.o" "gcc" "src/CMakeFiles/ipdelta_apply.dir/apply/stream_applier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipdelta_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipdelta_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
