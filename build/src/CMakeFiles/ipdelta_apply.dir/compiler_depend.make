# Empty compiler generated dependencies file for ipdelta_apply.
# This may be replaced when dependencies are built.
