file(REMOVE_RECURSE
  "libipdelta_adversary.a"
)
