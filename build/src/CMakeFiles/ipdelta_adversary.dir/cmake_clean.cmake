file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_adversary.dir/adversary/constructions.cpp.o"
  "CMakeFiles/ipdelta_adversary.dir/adversary/constructions.cpp.o.d"
  "libipdelta_adversary.a"
  "libipdelta_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
