# Empty compiler generated dependencies file for ipdelta_adversary.
# This may be replaced when dependencies are built.
