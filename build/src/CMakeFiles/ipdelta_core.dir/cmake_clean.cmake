file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_core.dir/core/buffer.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/buffer.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/checksum.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/checksum.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/hexdump.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/hexdump.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/io.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/io.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/lzss.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/lzss.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/rng.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/rolling_hash.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/rolling_hash.cpp.o.d"
  "CMakeFiles/ipdelta_core.dir/core/varint.cpp.o"
  "CMakeFiles/ipdelta_core.dir/core/varint.cpp.o.d"
  "libipdelta_core.a"
  "libipdelta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
