file(REMOVE_RECURSE
  "libipdelta_core.a"
)
