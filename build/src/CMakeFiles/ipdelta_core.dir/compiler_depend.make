# Empty compiler generated dependencies file for ipdelta_core.
# This may be replaced when dependencies are built.
