
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer.cpp" "src/CMakeFiles/ipdelta_core.dir/core/buffer.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/buffer.cpp.o.d"
  "/root/repo/src/core/checksum.cpp" "src/CMakeFiles/ipdelta_core.dir/core/checksum.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/checksum.cpp.o.d"
  "/root/repo/src/core/hexdump.cpp" "src/CMakeFiles/ipdelta_core.dir/core/hexdump.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/hexdump.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/CMakeFiles/ipdelta_core.dir/core/io.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/io.cpp.o.d"
  "/root/repo/src/core/lzss.cpp" "src/CMakeFiles/ipdelta_core.dir/core/lzss.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/lzss.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/ipdelta_core.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/rolling_hash.cpp" "src/CMakeFiles/ipdelta_core.dir/core/rolling_hash.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/rolling_hash.cpp.o.d"
  "/root/repo/src/core/varint.cpp" "src/CMakeFiles/ipdelta_core.dir/core/varint.cpp.o" "gcc" "src/CMakeFiles/ipdelta_core.dir/core/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
