file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_corpus.dir/corpus/generator.cpp.o"
  "CMakeFiles/ipdelta_corpus.dir/corpus/generator.cpp.o.d"
  "CMakeFiles/ipdelta_corpus.dir/corpus/mutation.cpp.o"
  "CMakeFiles/ipdelta_corpus.dir/corpus/mutation.cpp.o.d"
  "CMakeFiles/ipdelta_corpus.dir/corpus/workload.cpp.o"
  "CMakeFiles/ipdelta_corpus.dir/corpus/workload.cpp.o.d"
  "libipdelta_corpus.a"
  "libipdelta_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
