file(REMOVE_RECURSE
  "libipdelta_corpus.a"
)
