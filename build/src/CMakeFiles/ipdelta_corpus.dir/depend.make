# Empty dependencies file for ipdelta_corpus.
# This may be replaced when dependencies are built.
