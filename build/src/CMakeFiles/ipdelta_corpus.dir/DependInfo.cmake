
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cpp" "src/CMakeFiles/ipdelta_corpus.dir/corpus/generator.cpp.o" "gcc" "src/CMakeFiles/ipdelta_corpus.dir/corpus/generator.cpp.o.d"
  "/root/repo/src/corpus/mutation.cpp" "src/CMakeFiles/ipdelta_corpus.dir/corpus/mutation.cpp.o" "gcc" "src/CMakeFiles/ipdelta_corpus.dir/corpus/mutation.cpp.o.d"
  "/root/repo/src/corpus/workload.cpp" "src/CMakeFiles/ipdelta_corpus.dir/corpus/workload.cpp.o" "gcc" "src/CMakeFiles/ipdelta_corpus.dir/corpus/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipdelta_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
