file(REMOVE_RECURSE
  "libipdelta_device.a"
)
