
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/channel.cpp" "src/CMakeFiles/ipdelta_device.dir/device/channel.cpp.o" "gcc" "src/CMakeFiles/ipdelta_device.dir/device/channel.cpp.o.d"
  "/root/repo/src/device/flash_device.cpp" "src/CMakeFiles/ipdelta_device.dir/device/flash_device.cpp.o" "gcc" "src/CMakeFiles/ipdelta_device.dir/device/flash_device.cpp.o.d"
  "/root/repo/src/device/resumable_updater.cpp" "src/CMakeFiles/ipdelta_device.dir/device/resumable_updater.cpp.o" "gcc" "src/CMakeFiles/ipdelta_device.dir/device/resumable_updater.cpp.o.d"
  "/root/repo/src/device/updater.cpp" "src/CMakeFiles/ipdelta_device.dir/device/updater.cpp.o" "gcc" "src/CMakeFiles/ipdelta_device.dir/device/updater.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipdelta_apply.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipdelta_inplace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipdelta_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipdelta_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
