# Empty dependencies file for ipdelta_device.
# This may be replaced when dependencies are built.
