file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_device.dir/device/channel.cpp.o"
  "CMakeFiles/ipdelta_device.dir/device/channel.cpp.o.d"
  "CMakeFiles/ipdelta_device.dir/device/flash_device.cpp.o"
  "CMakeFiles/ipdelta_device.dir/device/flash_device.cpp.o.d"
  "CMakeFiles/ipdelta_device.dir/device/resumable_updater.cpp.o"
  "CMakeFiles/ipdelta_device.dir/device/resumable_updater.cpp.o.d"
  "CMakeFiles/ipdelta_device.dir/device/updater.cpp.o"
  "CMakeFiles/ipdelta_device.dir/device/updater.cpp.o.d"
  "libipdelta_device.a"
  "libipdelta_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
