file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_archive.dir/archive/archive.cpp.o"
  "CMakeFiles/ipdelta_archive.dir/archive/archive.cpp.o.d"
  "CMakeFiles/ipdelta_archive.dir/archive/upgrade_planner.cpp.o"
  "CMakeFiles/ipdelta_archive.dir/archive/upgrade_planner.cpp.o.d"
  "libipdelta_archive.a"
  "libipdelta_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
