file(REMOVE_RECURSE
  "libipdelta_archive.a"
)
