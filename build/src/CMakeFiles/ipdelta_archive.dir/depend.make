# Empty dependencies file for ipdelta_archive.
# This may be replaced when dependencies are built.
