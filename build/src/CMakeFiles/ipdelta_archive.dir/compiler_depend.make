# Empty compiler generated dependencies file for ipdelta_archive.
# This may be replaced when dependencies are built.
