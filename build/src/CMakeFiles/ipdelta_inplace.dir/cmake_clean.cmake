file(REMOVE_RECURSE
  "CMakeFiles/ipdelta_inplace.dir/inplace/analysis.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/analysis.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/converter.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/converter.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/crwi_graph.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/crwi_graph.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/cycle_policy.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/cycle_policy.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/exact_fvs.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/exact_fvs.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/inplace_differ.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/inplace_differ.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/interval_index.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/interval_index.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/scc.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/scc.cpp.o.d"
  "CMakeFiles/ipdelta_inplace.dir/inplace/topo_sort.cpp.o"
  "CMakeFiles/ipdelta_inplace.dir/inplace/topo_sort.cpp.o.d"
  "libipdelta_inplace.a"
  "libipdelta_inplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdelta_inplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
