file(REMOVE_RECURSE
  "libipdelta_inplace.a"
)
