
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inplace/analysis.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/analysis.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/analysis.cpp.o.d"
  "/root/repo/src/inplace/converter.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/converter.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/converter.cpp.o.d"
  "/root/repo/src/inplace/crwi_graph.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/crwi_graph.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/crwi_graph.cpp.o.d"
  "/root/repo/src/inplace/cycle_policy.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/cycle_policy.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/cycle_policy.cpp.o.d"
  "/root/repo/src/inplace/exact_fvs.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/exact_fvs.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/exact_fvs.cpp.o.d"
  "/root/repo/src/inplace/inplace_differ.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/inplace_differ.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/inplace_differ.cpp.o.d"
  "/root/repo/src/inplace/interval_index.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/interval_index.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/interval_index.cpp.o.d"
  "/root/repo/src/inplace/scc.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/scc.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/scc.cpp.o.d"
  "/root/repo/src/inplace/topo_sort.cpp" "src/CMakeFiles/ipdelta_inplace.dir/inplace/topo_sort.cpp.o" "gcc" "src/CMakeFiles/ipdelta_inplace.dir/inplace/topo_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipdelta_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipdelta_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
