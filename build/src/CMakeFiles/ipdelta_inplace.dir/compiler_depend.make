# Empty compiler generated dependencies file for ipdelta_inplace.
# This may be replaced when dependencies are built.
