# Empty dependencies file for ipdelta_inplace.
# This may be replaced when dependencies are built.
