# Empty compiler generated dependencies file for bench_cycle_policies.
# This may be replaced when dependencies are built.
