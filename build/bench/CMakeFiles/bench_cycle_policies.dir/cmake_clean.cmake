file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_policies.dir/bench_cycle_policies.cpp.o"
  "CMakeFiles/bench_cycle_policies.dir/bench_cycle_policies.cpp.o.d"
  "bench_cycle_policies"
  "bench_cycle_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
