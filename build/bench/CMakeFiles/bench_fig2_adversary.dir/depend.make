# Empty dependencies file for bench_fig2_adversary.
# This may be replaced when dependencies are built.
