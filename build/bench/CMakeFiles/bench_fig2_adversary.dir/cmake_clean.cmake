file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_adversary.dir/bench_fig2_adversary.cpp.o"
  "CMakeFiles/bench_fig2_adversary.dir/bench_fig2_adversary.cpp.o.d"
  "bench_fig2_adversary"
  "bench_fig2_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
