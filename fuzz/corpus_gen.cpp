#include "corpus_gen.hpp"

#include <string>

#include "core/checksum.hpp"
#include "core/rng.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "ipdelta.hpp"
#include "net/frame.hpp"

namespace ipd::fuzzcorpus {

namespace {

Bytes flipped(Bytes data, std::size_t at, std::uint8_t mask) {
  if (!data.empty()) data[at % data.size()] ^= mask;
  return data;
}

Bytes truncated(const Bytes& data, std::size_t keep) {
  return Bytes(data.begin(),
               data.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(keep, data.size())));
}

}  // namespace

Bytes valid_delta(std::uint64_t seed, std::size_t size) {
  Rng rng(seed);
  const Bytes ref = generate_file(rng, static_cast<length_t>(size),
                                  FileProfile::kBinary);
  MutationModel model;
  model.length_scale = 48;
  const Bytes ver = mutate(ref, rng, 40, model);
  return Pipeline().build_inplace(ref, ver).delta;
}

ApplyJournalOptions fuzz_journal_options() noexcept {
  ApplyJournalOptions options;
  options.page_size = 64;
  options.undo_capacity = 256;
  options.header_capacity = 64;
  return options;
}

std::vector<Bytes> frame_seeds() {
  std::vector<Bytes> seeds;
  Rng rng(0xF1A3);

  Bytes hello(6);
  rng.fill(hello);
  seeds.push_back(encode_frame(FrameType::kHello, hello));
  seeds.push_back(encode_frame(FrameType::kGetDelta, hello));
  seeds.push_back(encode_frame(FrameType::kMetricsReq, ByteView{}));

  Bytes chunk(300);
  rng.fill(chunk);
  seeds.push_back(encode_frame(FrameType::kDeltaData, chunk));

  // A realistic stream: several frames back to back.
  Bytes stream;
  for (const FrameType type :
       {FrameType::kHello, FrameType::kHelloAck, FrameType::kDeltaBegin,
        FrameType::kDeltaData, FrameType::kDeltaEnd}) {
    Bytes payload(16 + rng.below(64));
    rng.fill(payload);
    const Bytes frame = encode_frame(type, payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  seeds.push_back(stream);

  // Rejection-path seeds: flipped CRC, flipped magic, torn tail.
  seeds.push_back(flipped(seeds[3], seeds[3].size() - 1, 0x40));
  seeds.push_back(flipped(seeds[0], 0, 0x01));
  seeds.push_back(truncated(stream, stream.size() / 2));
  return seeds;
}

std::vector<Bytes> codec_seeds() {
  std::vector<Bytes> seeds;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    seeds.push_back(valid_delta(seed, 2000 + 1500 * seed));
  }
  // Tiny delta: near-identical files, short command stream.
  seeds.push_back(valid_delta(9, 300));
  // Rejection paths: torn container, flipped payload byte, bare magic.
  seeds.push_back(truncated(seeds[0], seeds[0].size() / 3));
  seeds.push_back(flipped(seeds[1], seeds[1].size() / 2, 0x10));
  seeds.push_back(Bytes{'I', 'P', 'D', '1'});
  return seeds;
}

std::vector<Bytes> apply_journal_seeds() {
  const ApplyJournalOptions options = fuzz_journal_options();
  const std::size_t slot = ApplyJournal::slot_bytes(options);
  std::vector<Bytes> seeds;
  Rng rng(0xF1A4);

  const auto image_after = [&](int records) {
    MemoryJournalStorage storage(2 * slot);
    Bytes scratch(slot);
    ApplyJournal journal(storage, MutByteView(scratch), options);
    for (int i = 0; i < records; ++i) {
      ApplyRecord record;
      record.kind = i % 3 == 2 ? ApplyRecordKind::kSubstep
                               : ApplyRecordKind::kCheckpoint;
      record.artifact_crc = static_cast<std::uint32_t>(rng.below(1u << 31));
      record.artifact_size = 4096 + rng.below(4096);
      record.command_index = static_cast<std::uint64_t>(i);
      record.undo.resize(rng.below(options.undo_capacity));
      rng.fill(record.undo);
      record.header.resize(rng.below(options.header_capacity));
      rng.fill(record.header);
      journal.append(record);
    }
    return storage.bytes();
  };

  seeds.push_back(image_after(0));  // cleared storage
  seeds.push_back(image_after(1));  // one live slot
  seeds.push_back(image_after(2));  // both slots live
  seeds.push_back(image_after(5));  // wrapped several times
  // Torn slot write: newest slot half-zeroed (power cut mid-write).
  Bytes torn = image_after(3);
  std::fill(torn.begin() + static_cast<std::ptrdiff_t>(slot / 2),
            torn.begin() + static_cast<std::ptrdiff_t>(slot),
            std::uint8_t{0});
  seeds.push_back(std::move(torn));
  // Bit flip inside a record body.
  seeds.push_back(flipped(image_after(2), slot / 3, 0x08));
  return seeds;
}

std::vector<Bytes> record_log_seeds() {
  // Record framing (store/record_log.cpp): u32 record magic | u32 len |
  // u32 payload crc | u32 header crc | payload. Synthesized directly so
  // seed generation needs no filesystem.
  constexpr std::uint32_t kRecordMagic = 0x52445049;
  const auto put_u32 = [](Bytes& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  const auto framed = [&](ByteView payload) {
    Bytes frame;
    put_u32(frame, kRecordMagic);
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    put_u32(frame, crc32c(payload));
    put_u32(frame, crc32c(ByteView(frame.data(), 12)));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
  };

  std::vector<Bytes> seeds;
  Rng rng(0xF1A5);
  Bytes region;
  for (int i = 0; i < 4; ++i) {
    Bytes payload(1 + rng.below(200));
    rng.fill(payload);
    const Bytes frame = framed(payload);
    region.insert(region.end(), frame.begin(), frame.end());
    seeds.push_back(region);  // growing prefixes: 1..4 records
  }
  // Torn tail: a final record cut mid-payload.
  Bytes torn = region;
  torn.resize(torn.size() - 50);
  seeds.push_back(std::move(torn));
  // Corrupt payload CRC on the last record.
  seeds.push_back(flipped(region, region.size() - 1, 0x80));
  seeds.push_back(Bytes{});  // empty region: header-only file
  return seeds;
}

}  // namespace ipd::fuzzcorpus
