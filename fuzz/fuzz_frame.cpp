// Fuzz target: the wire frame decoder (net/frame.hpp), the first parser
// every byte from a peer must pass. Contract under hostile input:
//
//  * never crash, hang, or read out of bounds;
//  * either reject the stream with FormatError or produce frames that
//    re-encode byte-identically to the consumed wire region (the CRC,
//    version, and reserved-byte checks admit exactly the encoder's
//    output, nothing else).
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "net/frame.hpp"

using namespace ipd;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const ByteView input(data, size);

  // Chunking must not change the result; derive a chunk size from the
  // input so the fuzzer explores reassembly boundaries too.
  const std::size_t chunk = size == 0 ? 1 : 1 + data[0] % 97;

  FrameReader reader;
  Bytes reencoded;
  bool rejected = false;
  try {
    for (std::size_t at = 0; at < size; at += chunk) {
      reader.feed(input.subspan(at, std::min(chunk, size - at)));
      while (auto frame = reader.next()) {
        if (frame->payload.size() > kMaxFramePayload) abort();
        const Bytes wire = encode_frame(frame->type, frame->payload);
        reencoded.insert(reencoded.end(), wire.begin(), wire.end());
      }
    }
    reader.finish();
  } catch (const FormatError&) {
    rejected = true;  // the reject path is a correct outcome
  }

  // Every accepted frame came off the front of the stream, so the
  // re-encodings must reproduce the consumed prefix exactly.
  if (reencoded.size() > size ||
      (!reencoded.empty() &&
       std::memcmp(reencoded.data(), data, reencoded.size()) != 0)) {
    abort();
  }
  // A fully consumed, cleanly finished stream must be all frames.
  if (!rejected && reencoded.size() != size) abort();
  return 0;
}
