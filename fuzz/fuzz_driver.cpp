// Standalone driver so every fuzz target also builds without libFuzzer
// (GCC, or any toolchain without -fsanitize=fuzzer). Two modes:
//
//   fuzz_<target> DIR|FILE...
//       Run every corpus input through the target once and exit 0 iff
//       none crashed — the regression mode ctest runs on every build.
//
//   fuzz_<target> --mutate N SEED DIR|FILE...
//       Additionally run N deterministic mutations (byte flips, value
//       splats, truncations, duplications) of random corpus inputs —
//       the dumb-fuzz mode used to smoke targets where libFuzzer is not
//       available. Coverage-guided runs come from the clang CI job.
//
// Under libFuzzer this file is not linked; libFuzzer provides main().
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "core/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using ipd::Bytes;

std::vector<std::filesystem::path> collect(int argc, char** argv, int from) {
  std::vector<std::filesystem::path> files;
  for (int i = from; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "fuzz driver: no such input: %s\n", argv[i]);
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Bytes mutate(Bytes input, ipd::Rng& rng) {
  const std::uint64_t kind = rng.below(5);
  if (input.empty() || kind == 4) {
    // Splice a small random blob in (or start from nothing).
    Bytes blob(1 + rng.below(32));
    rng.fill(blob);
    const std::size_t at = input.empty() ? 0 : rng.below(input.size());
    input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                 blob.begin(), blob.end());
    return input;
  }
  switch (kind) {
    case 0:  // flip one bit
      input[rng.below(input.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // splat an interesting value
      input[rng.below(input.size())] =
          static_cast<std::uint8_t>("\x00\x01\x7f\x80\xff"[rng.below(5)]);
      break;
    case 2:  // truncate
      input.resize(rng.below(input.size()));
      break;
    default: {  // duplicate a window onto another position
      const std::size_t from = rng.below(input.size());
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(64, input.size() - from));
      const std::size_t to = rng.below(input.size());
      Bytes window(input.begin() + static_cast<std::ptrdiff_t>(from),
                   input.begin() + static_cast<std::ptrdiff_t>(from + len));
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(to),
                   window.begin(), window.end());
      break;
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutations = 0;
  std::uint64_t seed = 1;
  int at = 1;
  if (argc >= 4 && std::strcmp(argv[1], "--mutate") == 0) {
    mutations = std::strtoull(argv[2], nullptr, 10);
    seed = std::strtoull(argv[3], nullptr, 10);
    at = 4;
  }
  if (at >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N SEED] CORPUS_DIR|FILE...\n", argv[0]);
    return 2;
  }

  std::vector<Bytes> corpus;
  for (const auto& path : collect(argc, argv, at)) {
    corpus.push_back(ipd::read_file(path));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz driver: empty corpus\n");
    return 2;
  }
  for (const Bytes& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  ipd::Rng rng(seed);
  for (std::uint64_t i = 0; i < mutations; ++i) {
    Bytes mutated = corpus[rng.below(corpus.size())];
    // Stack 1-4 mutations: single flips mostly die in the outermost CRC,
    // deeper stacks reach the parsers behind it.
    const std::uint64_t stacked = 1 + rng.below(4);
    for (std::uint64_t m = 0; m < stacked; ++m) {
      mutated = mutate(std::move(mutated), rng);
    }
    LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
  }

  std::fprintf(stderr, "fuzz driver: %zu corpus inputs + %llu mutations, 0 crashes\n",
               corpus.size(), static_cast<unsigned long long>(mutations));
  return 0;
}
