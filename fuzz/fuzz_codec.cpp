// Fuzz target: the delta container codec (delta/codec.hpp) — header
// parse, full deserialization, the never-throwing command probe, and the
// bounded in-place apply. Contract under hostile input:
//
//  * try_parse_header / deserialize_delta throw ipd::Error or succeed;
//  * a container that decodes must re-serialize into a container that
//    decodes to the same script (round-trip stability);
//  * probe_command never throws and always makes progress on kOk;
//  * apply_delta_inplace on a bounded buffer either throws or produces
//    exactly version_length bytes matching the header's version CRC.
#include <cstdint>
#include <cstdlib>

#include "apply/apply.hpp"
#include "core/checksum.hpp"
#include "delta/codec.hpp"
#include "ipdelta.hpp"

using namespace ipd;

namespace {

// Bound the apply buffer: a hostile header may announce huge lengths,
// and the harness must not oblige with the allocation.
constexpr std::size_t kMaxApplyBytes = 1u << 20;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const ByteView input(data, size);

  std::optional<std::pair<DeltaHeader, std::size_t>> header;
  try {
    header = try_parse_header(input);
    if (header && header->second > size) abort();  // consumed > available
  } catch (const Error&) {
    header.reset();
  }

  try {
    const DeltaFile file = deserialize_delta(input);
    const Bytes again = serialize_delta(file);
    const DeltaFile file2 = deserialize_delta(again);
    if (file2.script.commands() != file.script.commands()) abort();
    if (file2.version_length != file.version_length) abort();
    if (file2.version_crc != file.version_crc) abort();
  } catch (const Error&) {
    // rejected: fine
  }

  // The verifier's probe primitive must never throw and must either
  // consume bytes or stop.
  if (header) {
    const std::uint64_t payload_len = header->first.payload_length;
    if (header->second + payload_len <= size) {
      const ByteView payload =
          input.subspan(header->second, static_cast<std::size_t>(payload_len));
      offset_t running_to = 0;
      std::size_t at = 0;
      while (at < payload.size()) {
        const CommandProbe probe =
            probe_command(payload.subspan(at), header->first.format,
                          header->first.version_length, running_to);
        if (probe.status != CommandProbe::Status::kOk) break;
        if (probe.consumed == 0) abort();  // livelock: no progress on kOk
        at += probe.consumed;
      }
    }

    if (header->first.reference_length <= kMaxApplyBytes &&
        header->first.version_length <= kMaxApplyBytes) {
      Bytes buffer(std::max<std::size_t>(header->first.reference_length,
                                         header->first.version_length),
                   std::uint8_t{0xA5});
      try {
        const length_t new_len = apply_delta_inplace(input, buffer);
        if (new_len != header->first.version_length) abort();
        buffer.resize(static_cast<std::size_t>(new_len));
        if (crc32c(buffer) != header->first.version_crc) abort();
      } catch (const Error&) {
        // rejected: fine
      }
    }
  }
  return 0;
}
