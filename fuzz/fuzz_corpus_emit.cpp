// Corpus emitter: regenerate the checked-in seed corpus under
// fuzz/corpus/ from the shared generators in corpus_gen.cpp.
//
//   fuzz_corpus_emit <output-dir>
//
// writes <output-dir>/<target>/seed-NN.bin for every target. Run after
// changing a wire/container format and commit the result — the fuzz
// regression tests and the libFuzzer CI jobs both start from these
// files.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "corpus_gen.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);

  struct Target {
    const char* name;
    std::vector<ipd::Bytes> (*make)();
  };
  const Target targets[] = {
      {"frame", &ipd::fuzzcorpus::frame_seeds},
      {"codec", &ipd::fuzzcorpus::codec_seeds},
      {"apply_journal", &ipd::fuzzcorpus::apply_journal_seeds},
      {"record_log", &ipd::fuzzcorpus::record_log_seeds},
  };

  for (const Target& target : targets) {
    const std::filesystem::path dir = root / target.name;
    std::filesystem::create_directories(dir);
    const std::vector<ipd::Bytes> seeds = target.make();
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "seed-%02zu.bin", i);
      ipd::write_file(dir / name, seeds[i]);
    }
    std::printf("%-14s %zu seeds\n", target.name, seeds.size());
  }
  return 0;
}
