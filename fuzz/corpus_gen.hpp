// Seed-corpus generation shared by the fuzz harnesses, the corpus
// emitter tool, and the deterministic fuzz tests in tests/.
//
// Every untrusted parser gets its seeds from here so the checked-in
// corpus under fuzz/corpus/, the gtest mutation loops, and the libFuzzer
// jobs all start from the same structurally-valid inputs: real encoded
// frames, real delta containers, real journal slot images, real record
// logs — plus deliberately torn and bit-flipped variants, because a
// corpus of only-valid inputs teaches a fuzzer nothing about rejection
// paths.
#pragma once

#include <cstdint>
#include <vector>

#include "apply/apply_journal.hpp"
#include "core/types.hpp"

namespace ipd::fuzzcorpus {

/// A structurally valid serialized in-place delta between two related
/// generated files (deterministic in `seed`).
Bytes valid_delta(std::uint64_t seed, std::size_t size = 5000);

/// The journal geometry every fuzz consumer of ApplyJournal agrees on —
/// small capacities keep the whole two-slot storage image inside one
/// fuzzer input.
ApplyJournalOptions fuzz_journal_options() noexcept;

/// Seed inputs per target. Each Bytes is one corpus file.
std::vector<Bytes> frame_seeds();
std::vector<Bytes> codec_seeds();
std::vector<Bytes> apply_journal_seeds();
/// Record-region images (everything after the 16-byte file header; the
/// harness prepends a valid header so fuzzing explores the recovery
/// scan, not the magic check).
std::vector<Bytes> record_log_seeds();

}  // namespace ipd::fuzzcorpus
