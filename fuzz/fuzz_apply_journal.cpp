// Fuzz target: apply-journal recovery (apply/apply_journal.hpp). The
// journal's two slots live on storage that power loss may tear
// arbitrarily; the fuzzer plays the role of the torn flash. Contract:
//
//  * construction over any storage image never crashes — a slot either
//    yields a CRC-valid record within the configured capacities or is
//    ignored;
//  * a recovered record respects the undo/header capacity bounds;
//  * appending after recovery lands in a slot the next recovery scan
//    finds as newest (seq strictly grows past anything recovered).
#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "corpus_gen.hpp"

using namespace ipd;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const ApplyJournalOptions options = fuzzcorpus::fuzz_journal_options();
  const std::size_t slot = ApplyJournal::slot_bytes(options);

  MemoryJournalStorage storage(2 * slot);
  std::copy_n(data, std::min(size, storage.bytes().size()),
              storage.bytes().begin());

  Bytes scratch(slot);
  ApplyJournal journal(storage, MutByteView(scratch), options);

  std::uint64_t recovered_seq = 0;
  if (const auto& newest = journal.newest()) {
    recovered_seq = newest->seq;
    if (newest->undo.size() > options.undo_capacity) abort();
    if (newest->header.size() > options.header_capacity) abort();
    // Identity filtering must agree with the recovered record.
    const auto match =
        journal.newest_for(newest->artifact_crc, newest->artifact_size);
    if (!match || match->seq != newest->seq) abort();
    if (journal.newest_for(~newest->artifact_crc, newest->artifact_size)) {
      abort();
    }
  }

  // Append one record derived from the input; recovery over the mutated
  // storage must surface exactly it as newest.
  ApplyRecord record;
  record.kind = ApplyRecordKind::kCheckpoint;
  record.artifact_crc = static_cast<std::uint32_t>(size);
  record.artifact_size = size;
  record.command_index = 7;
  if (size > 0) {
    record.undo.assign(data,
                       data + std::min(size, options.undo_capacity));
  }
  journal.append(record);

  Bytes scratch2(slot);
  ApplyJournal reopened(storage, MutByteView(scratch2), options);
  const auto& newest = reopened.newest();
  if (!newest) abort();
  if (journal.newest()->seq != newest->seq) abort();
  if (newest->seq < recovered_seq) abort();
  if (newest->artifact_size != size) abort();
  if (newest->command_index != 7) abort();
  if (newest->undo != record.undo) abort();
  return 0;
}
