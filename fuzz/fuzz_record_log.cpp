// Fuzz target: RecordLog torn-tail recovery (store/record_log.cpp), the
// parser under the artifact store's manifest and segment files. The
// input is the record region of a log file; the harness prepends a valid
// 16-byte file header so fuzzing explores the recovery scan rather than
// the constant magic check (a second pass feeds the raw input as the
// whole file to keep the header checks covered too). Contract:
//
//  * recover() never crashes; it visits a CRC-valid record prefix and
//    truncates the rest;
//  * every offset recover() reported must read back via read_at() with
//    an identical payload (recovery and point reads must agree on what
//    the durable prefix is);
//  * after recovery size() is exactly header + visited frames.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "store/record_log.hpp"

using namespace ipd;

namespace {

constexpr char kMagic[9] = "FUZZLOG1";

std::filesystem::path scratch_path() {
  static const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("ipdelta_fuzz_record_log_" + std::to_string(::getpid()) + ".dat");
  return path;
}

void drive(const std::filesystem::path& path) {
  try {
    RecordLog log = RecordLog::open(path, kMagic);
    std::vector<std::pair<std::uint64_t, Bytes>> seen;
    const RecoverStats stats = log.recover([&](std::uint64_t offset,
                                               Bytes payload) {
      seen.emplace_back(offset, std::move(payload));
    });
    if (stats.records != seen.size()) abort();
    std::uint64_t expected_end = RecordLog::first_record_offset();
    for (const auto& [offset, payload] : seen) {
      if (log.read_at(offset) != payload) abort();
      if (offset != expected_end) abort();
      expected_end += RecordLog::framed_size(payload.size());
    }
    if (log.size() != expected_end) abort();
    if (stats.durable_bytes != expected_end) abort();
  } catch (const StoreError&) {
    // rejected (bad file header, unreadable): fine
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::filesystem::path path = scratch_path();

  // Pass 1: input is the record region behind a valid file header.
  {
    RecordLog log = RecordLog::create(path, kMagic);
    (void)log;  // wrote header + synced
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) return 0;  // scratch dir unavailable: skip
    if (size > 0) std::fwrite(data, 1, size, f);
    std::fclose(f);
  }
  drive(path);

  // Pass 2: input is the whole file — header checks included.
  write_file(path, ByteView(data, size));
  drive(path);

  std::filesystem::remove(path);
  return 0;
}
